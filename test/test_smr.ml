(* Scheme-generic tests for the SMR framework and the baseline
   trackers (battery machinery lives in Test_support). *)

open Smr
open Test_support

(* ------------------------------------------------------------------ *)
(* The use-after-free detector must fire when a broken scheme frees a
   still-referenced block and a reader dereferences it again. *)

let test_uaf_detector_fires () =
  let cfg = { Config.default with nthreads = 2; check_uaf = true } in
  let t = Unsafe_immediate.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  Unsafe_immediate.enter t ~tid:0;
  let b = Pool.alloc pool in
  b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
  Unsafe_immediate.alloc_hook t ~tid:0 b.Blk.hdr;
  let link = Atomic.make b in
  (* Bug under test: retiring while [link] still points at the block.
     Unsafe_immediate frees instantly; the next tracked read must
     trip the lifecycle check. *)
  Unsafe_immediate.retire t ~tid:0 b.Blk.hdr;
  (match Unsafe_immediate.read t ~tid:1 ~idx:0 link proj with
  | exception Hdr.Lifecycle _ -> ()
  | _ -> Alcotest.fail "use-after-free went undetected");
  Unsafe_immediate.leave t ~tid:0

(* ------------------------------------------------------------------ *)
(* Hdr unit tests *)

let test_hdr_lifecycle () =
  let h = Hdr.create () in
  Hdr.set_retired h;
  Hdr.set_freed h;
  Alcotest.(check bool) "freed" true (Hdr.is_freed h);
  (match Hdr.set_freed h with
  | exception Hdr.Lifecycle ("double-free", _) -> ()
  | () -> Alcotest.fail "double free not detected");
  Hdr.set_live h;
  Alcotest.(check bool) "revived" false (Hdr.is_freed h)

let test_hdr_nil () =
  Alcotest.(check bool) "nil is nil" true (Hdr.is_nil Hdr.nil);
  Alcotest.(check bool) "fresh not nil" false (Hdr.is_nil (Hdr.create ()));
  Hdr.check_not_freed "test" Hdr.nil

let test_hdr_uids_unique () =
  let hs = List.init 64 (fun _ -> Hdr.create ()) in
  let uids = List.map (fun h -> h.Hdr.uid) hs in
  let sorted = List.sort_uniq compare uids in
  Alcotest.(check int) "unique uids" 64 (List.length sorted)

let test_hdr_set_live_resets () =
  let h = Hdr.create () in
  let other = Hdr.create () in
  h.Hdr.next <- other;
  h.Hdr.batch_link <- other;
  h.Hdr.ref_node <- other;
  Atomic.set h.Hdr.nref 42;
  h.Hdr.birth <- 7;
  h.Hdr.retire_era <- 9;
  Hdr.set_live h;
  Alcotest.(check bool) "next reset" true (Hdr.is_nil h.Hdr.next);
  Alcotest.(check bool) "batch_link reset" true (Hdr.is_nil h.Hdr.batch_link);
  Alcotest.(check bool) "ref_node reset" true (Hdr.is_nil h.Hdr.ref_node);
  Alcotest.(check int) "nref reset" 0 (Atomic.get h.Hdr.nref);
  Alcotest.(check int) "birth reset" 0 h.Hdr.birth;
  Alcotest.(check int) "retire_era reset" 0 h.Hdr.retire_era

(* ------------------------------------------------------------------ *)
(* Uid registry: the decode side of the packed head backend.  Every
   header is registered at creation under its uid; [of_uid] must
   return that exact header, reject out-of-range indices, and — the
   racy case — wait out a concurrent registration whose uid has been
   reserved but whose cell store has not landed yet (mirror of the
   mpool lookup-vs-fresh frontier race). *)

let test_hdr_of_uid_roundtrip () =
  let hs = List.init 100 (fun _ -> Hdr.create ()) in
  List.iter
    (fun h ->
      Alcotest.(check bool)
        "of_uid returns the registered header" true
        (Hdr.of_uid h.Hdr.uid == h))
    hs

let test_hdr_of_uid_out_of_range () =
  let h = Hdr.create () in
  ignore h;
  Alcotest.check_raises "negative"
    (Invalid_argument "Hdr.of_uid: uid out of range") (fun () ->
      ignore (Hdr.of_uid (-1)));
  Alcotest.check_raises "past frontier"
    (Invalid_argument "Hdr.of_uid: uid out of range") (fun () ->
      ignore (Hdr.of_uid max_int))

let test_hdr_of_uid_vs_create_frontier () =
  (* [create] reserves the uid (fetch-and-add) strictly before the
     registry cell is written, so a reader chasing the frontier can
     pass the range check and hit a cell still holding the nil
     placeholder.  [of_uid] must wait on that cell, never return nil
     or a wrong header.  Tolerated failure: the range check itself. *)
  let stop = Atomic.make false in
  let bad = Atomic.make None in
  let base = (Hdr.create ()).Hdr.uid + 1 in
  let producers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (Hdr.create ())
            done))
  in
  let consumer =
    Domain.spawn (fun () ->
        let i = ref base in
        (try
           while not (Atomic.get stop) do
             match Hdr.of_uid !i with
             | h ->
                 if h.Hdr.uid <> !i then begin
                   Atomic.set bad
                     (Some
                        (Printf.sprintf "of_uid %d returned header %d" !i
                           h.Hdr.uid));
                   Atomic.set stop true
                 end
                 else if Hdr.is_nil h then begin
                   Atomic.set bad (Some "of_uid returned nil");
                   Atomic.set stop true
                 end
                 else incr i
             | exception Invalid_argument msg
               when msg = "Hdr.of_uid: uid out of range" ->
                 Domain.cpu_relax ()
           done
         with e ->
           Atomic.set bad (Some (Printexc.to_string e));
           Atomic.set stop true);
        !i - base)
  in
  Unix.sleepf 0.3;
  Atomic.set stop true;
  let chased = Domain.join consumer in
  List.iter Domain.join producers;
  (match Atomic.get bad with
  | Some msg -> Alcotest.fail ("registry frontier race: " ^ msg)
  | None -> ());
  Alcotest.(check bool) "consumer chased a non-empty frontier" true
    (chased > 0)

let test_hdr_registry_tombstone_and_republish () =
  (* [set_freed] swaps the registry cell to a dead sentinel — a freed
     uid is only ever decoded from a stale head-word snapshot, and
     because the packed CAS is value-based the decoder must detect the
     sentinel ([is_tombstone]) and retry rather than CAS (the word can
     ABA-revisit its old bits); [set_live] republishes on recycling. *)
  let h = Hdr.create () in
  let u = h.Hdr.uid in
  Alcotest.(check bool) "live header is not the tombstone" false
    (Hdr.is_tombstone (Hdr.of_uid u));
  Hdr.set_retired h;
  Hdr.set_freed h;
  let s = Hdr.of_uid u in
  Alcotest.(check bool) "freed uid no longer decodes to the header" true
    (s != h);
  Alcotest.(check bool) "freed uid decodes to a freed sentinel" true
    (Hdr.is_freed s);
  Alcotest.(check bool) "freed uid decodes to the tombstone" true
    (Hdr.is_tombstone s);
  Alcotest.(check bool) "nil is not the tombstone" false
    (Hdr.is_tombstone Hdr.nil);
  Hdr.set_live h;
  Alcotest.(check bool) "recycled uid decodes to the header again" true
    (Hdr.of_uid u == h);
  Alcotest.(check bool) "recycled uid is not the tombstone" false
    (Hdr.is_tombstone (Hdr.of_uid u))

(* Allocate-and-free in its own function so no stack slot keeps the
   header reachable after return. *)
let[@inline never] weak_freed_header () =
  let w = Weak.create 1 in
  let h = Hdr.create () in
  Weak.set w 0 (Some h);
  Hdr.set_retired h;
  Hdr.set_freed h;
  w

let test_hdr_registry_releases_freed () =
  (* The regression behind the rule: with the registry holding freed
     headers strongly, every header — and through its free hook, its
     whole pool — was immortal, so anything that created trackers and
     pools in a loop (the schedule checker explores tens of thousands
     of them per test) grew without bound. *)
  let w = weak_freed_header () in
  Gc.full_major ();
  Alcotest.(check bool) "freed header is collectable" true
    (Weak.get w 0 = None)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_validate () =
  Config.validate Config.default;
  Config.validate (Config.paper ~nthreads:72);
  let bad = { Config.default with slots = 3 } in
  (match Config.validate bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-power-of-two slots accepted");
  let bad = { Config.default with nthreads = 0 } in
  match Config.validate bad with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero threads accepted"

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "smr.hdr",
      [
        Alcotest.test_case "lifecycle" `Quick test_hdr_lifecycle;
        Alcotest.test_case "nil sentinel" `Quick test_hdr_nil;
        Alcotest.test_case "uids unique" `Quick test_hdr_uids_unique;
        Alcotest.test_case "set_live resets fields" `Quick
          test_hdr_set_live_resets;
        Alcotest.test_case "uid registry roundtrip" `Quick
          test_hdr_of_uid_roundtrip;
        Alcotest.test_case "uid registry range check" `Quick
          test_hdr_of_uid_out_of_range;
        Alcotest.test_case "uid registry vs create frontier" `Slow
          test_hdr_of_uid_vs_create_frontier;
        Alcotest.test_case "uid registry tombstone + republish" `Quick
          test_hdr_registry_tombstone_and_republish;
        Alcotest.test_case "uid registry releases freed headers" `Quick
          test_hdr_registry_releases_freed;
        Alcotest.test_case "config validation" `Quick test_config_validate;
      ] );
    scheme_suite "smr.leaky" (module Leaky)
      ~expect:{ reclaims = false; protects = true };
    scheme_suite "smr.ebr" (module Ebr)
      ~expect:{ reclaims = true; protects = true };
    scheme_suite "smr.ibr" (module Ibr)
      ~expect:{ reclaims = true; protects = true };
    scheme_suite "smr.he" (module He)
      ~expect:{ reclaims = true; protects = true };
    scheme_suite "smr.hp" (module Hp)
      ~expect:{ reclaims = true; protects = true };
    ( "smr.robustness",
      [
        Alcotest.test_case "HP bounded under stall" `Quick
          (test_robust_bounded (module Hp));
        Alcotest.test_case "HE bounded under stall" `Quick
          (test_robust_bounded (module He));
        Alcotest.test_case "IBR bounded under stall" `Quick
          (test_robust_bounded (module Ibr));
        Alcotest.test_case "Epoch pins under stall" `Quick
          (test_nonrobust_pins (module Ebr));
        Alcotest.test_case "UAF detector fires" `Quick test_uaf_detector_fires;
      ] );
  ]
