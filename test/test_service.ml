(* The KV service layer: codec round-trips, mailbox bounds, loopback
   round-trips of every opcode against a live sharded service, load
   shedding at capacity, fixed-seed loadgen determinism, and the
   Zipf inverse-CDF cache. *)

let strip_frame buf =
  let b = Buffer.to_bytes buf in
  Bytes.sub b 4 (Bytes.length b - 4)

(* ------------------------------------------------------------------ *)
(* Codec *)

let roundtrip_request req =
  let buf = Buffer.create 32 in
  Service.Codec.encode_request buf req;
  Service.Codec.request_of_payload (strip_frame buf)

let roundtrip_reply rep =
  let buf = Buffer.create 32 in
  Service.Codec.encode_reply buf rep;
  Service.Codec.reply_of_payload (strip_frame buf)

let test_codec_requests () =
  List.iter
    (fun req ->
      Alcotest.(check bool)
        (Service.Codec.request_to_string req)
        true
        (roundtrip_request req = req))
    [
      Service.Codec.Get 0;
      Service.Codec.Get max_int;
      Service.Codec.Get min_int;
      Service.Codec.Put { key = 42; value = -42 };
      Service.Codec.Put { key = max_int; value = min_int };
      Service.Codec.Del 7;
      Service.Codec.Cas { key = 3; expected = -1; desired = max_int };
    ]

let test_codec_replies () =
  List.iter
    (fun rep ->
      Alcotest.(check bool)
        (Service.Codec.reply_to_string rep)
        true
        (roundtrip_reply rep = rep))
    [
      Service.Codec.Value 99;
      Service.Codec.Value min_int;
      Service.Codec.Not_found;
      Service.Codec.Created;
      Service.Codec.Updated;
      Service.Codec.Deleted;
      Service.Codec.Cas_ok;
      Service.Codec.Cas_fail;
      Service.Codec.Shed;
      Service.Codec.Error "shard on fire: \xe2\x98\x83";
      Service.Codec.Error "";
    ]

let test_codec_malformed () =
  let raises b =
    match Service.Codec.request_of_payload b with
    | _ -> false
    | exception Service.Codec.Malformed _ -> true
  in
  Alcotest.(check bool) "empty payload" true (raises Bytes.empty);
  Alcotest.(check bool) "unknown opcode" true (raises (Bytes.make 9 '\xff'));
  Alcotest.(check bool)
    "truncated operand" true
    (raises (Bytes.make 5 '\x01'));
  (match Service.Codec.reply_of_payload (Bytes.make 3 '\x7f') with
  | _ -> Alcotest.fail "reply decoder accepted garbage"
  | exception Service.Codec.Malformed _ -> ())

(* ------------------------------------------------------------------ *)
(* Mailbox *)

module MB = Service.Mailbox.Make (Smr.Ebr)

let test_mailbox_bounds () =
  let cfg = { Smr.Config.default with Smr.Config.nthreads = 2 } in
  let mb = MB.create ~cfg ~capacity:4 () in
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "send %d" i)
      true
      (MB.try_send mb ~tid:0 i)
  done;
  Alcotest.(check bool) "full mailbox sheds" false (MB.try_send mb ~tid:0 5);
  Alcotest.(check int) "depth" 4 (MB.depth mb);
  Alcotest.(check int) "rejected" 1 (MB.rejected mb);
  Alcotest.(check (list int)) "fifo drain" [ 1; 2 ] (MB.drain mb ~tid:1 ~max:2);
  Alcotest.(check bool) "slot freed" true (MB.try_send mb ~tid:0 6);
  Alcotest.(check (list int))
    "rest in order" [ 3; 4; 6 ]
    (MB.drain mb ~tid:1 ~max:100);
  Alcotest.(check (list int)) "empty" [] (MB.drain mb ~tid:1 ~max:100);
  Alcotest.(check int) "sent total" 5 (MB.sent mb);
  MB.flush mb ~tid:1

(* ------------------------------------------------------------------ *)
(* Live service: loopback, shedding, sockets *)

let make_svc ?(shards = 2) ?(clients = 2) ?(mailbox_capacity = 64)
    ?(scheme = "hyaline") () =
  Service.Shard.create
    ~structure:(Workload.Registry.find_structure "hashmap")
    ~scheme:(Workload.Registry.find_scheme scheme)
    {
      Service.Shard.default_config with
      Service.Shard.shards;
      clients;
      mailbox_capacity;
    }

let test_loopback_opcodes () =
  let svc = make_svc () in
  Fun.protect
    ~finally:(fun () -> svc.Service.Shard.stop ())
    (fun () ->
      let conn = Service.Conn.Loopback.connect svc ~tid:0 in
      let call = Service.Conn.Loopback.call conn in
      let check name expected req =
        Alcotest.(check string)
          name
          (Service.Codec.reply_to_string expected)
          (Service.Codec.reply_to_string (call req))
      in
      check "get missing" Service.Codec.Not_found (Service.Codec.Get 1);
      check "put fresh" Service.Codec.Created
        (Service.Codec.Put { key = 1; value = 10 });
      check "get hit" (Service.Codec.Value 10) (Service.Codec.Get 1);
      check "put overwrite" Service.Codec.Updated
        (Service.Codec.Put { key = 1; value = 11 });
      check "cas mismatch" Service.Codec.Cas_fail
        (Service.Codec.Cas { key = 1; expected = 10; desired = 99 });
      check "cas match" Service.Codec.Cas_ok
        (Service.Codec.Cas { key = 1; expected = 11; desired = 12 });
      check "get after cas" (Service.Codec.Value 12) (Service.Codec.Get 1);
      check "del hit" Service.Codec.Deleted (Service.Codec.Del 1);
      check "del missing" Service.Codec.Not_found (Service.Codec.Del 1);
      check "cas missing" Service.Codec.Not_found
        (Service.Codec.Cas { key = 1; expected = 0; desired = 0 }))

let test_shed_at_capacity () =
  (* One shard, tiny mailbox, parked consumer: submissions queue until
     the free-list runs dry, then shed synchronously.  Unparking
     drains the backlog — nothing is lost, nothing double-replied. *)
  let svc = make_svc ~shards:1 ~mailbox_capacity:2 () in
  Fun.protect
    ~finally:(fun () -> svc.Service.Shard.stop ())
    (fun () ->
      svc.Service.Shard.set_stalled ~shard:0 true;
      Alcotest.(check bool) "stalled gauge" true (svc.Service.Shard.is_stalled 0);
      let sheds = Atomic.make 0 in
      let done_ = Atomic.make 0 in
      let submitted = ref 0 in
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get sheds = 0 && Unix.gettimeofday () < deadline do
        incr submitted;
        svc.Service.Shard.submit ~tid:0
          (Service.Codec.Get !submitted)
          (function
            | Service.Codec.Shed -> Atomic.incr sheds
            | _ -> Atomic.incr done_);
        Unix.sleepf 0.001
      done;
      Alcotest.(check bool) "observed a shed reply" true (Atomic.get sheds > 0);
      Alcotest.(check bool)
        "service counted the sheds" true
        (svc.Service.Shard.sheds () > 0);
      svc.Service.Shard.set_stalled ~shard:0 false;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while
        Atomic.get done_ + Atomic.get sheds < !submitted
        && Unix.gettimeofday () < deadline
      do
        Unix.sleepf 0.001
      done;
      Alcotest.(check int)
        "every submission answered exactly once" !submitted
        (Atomic.get done_ + Atomic.get sheds);
      (* Backlog cleared: the shard serves again. *)
      match Service.Shard.call svc ~tid:0 (Service.Codec.Get 1) with
      | Service.Codec.Value _ | Service.Codec.Not_found -> ()
      | r ->
          Alcotest.failf "unstalled shard answered %s"
            (Service.Codec.reply_to_string r))

let test_unix_socket () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kvd-test-%d.sock" (Unix.getpid ()))
  in
  let svc = make_svc () in
  let server = Service.Conn.serve_unix svc ~path () in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      svc.Service.Shard.stop ())
    (fun () ->
      let fd = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Alcotest.(check string)
            "put over socket" "CREATED"
            (Service.Codec.reply_to_string
               (Service.Conn.call_fd fd
                  (Service.Codec.Put { key = 5; value = 55 })));
          Alcotest.(check string)
            "get over socket" "VALUE 55"
            (Service.Codec.reply_to_string
               (Service.Conn.call_fd fd (Service.Codec.Get 5)))))

(* A client that vanishes mid-request-frame must cost nothing durable:
   the handler observes the EOF, and the leased tid slot goes back to
   the pool.  With only 2 slots, 8 abrupt disconnects would wedge the
   server into answering Shed forever if any lease leaked. *)
let test_abrupt_disconnect_releases_tids () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "kvd-churn-%d.sock" (Unix.getpid ()))
  in
  let svc = make_svc ~clients:2 () in
  let server = Service.Conn.serve_unix svc ~path () in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      svc.Service.Shard.stop ())
    (fun () ->
      for _ = 1 to 8 do
        let fd = Service.Conn.connect_unix ~path in
        (* Half a length prefix, then gone. *)
        (try ignore (Unix.write fd (Bytes.make 2 '\007') 0 2)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done;
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec attempt () =
        let fd = Service.Conn.connect_unix ~path in
        let r =
          try Some (Service.Conn.call_fd fd (Service.Codec.Get 3))
          with Service.Conn.Closed -> None
        in
        (try Unix.close fd with Unix.Unix_error _ -> ());
        match r with
        | Some Service.Codec.Not_found -> ()
        | Some Service.Codec.Shed | None ->
            if Unix.gettimeofday () > deadline then
              Alcotest.fail
                "client slots never released after abrupt disconnects"
            else begin
              Unix.sleepf 0.02;
              attempt ()
            end
        | Some r ->
            Alcotest.failf "unexpected reply %s"
              (Service.Codec.reply_to_string r)
      in
      attempt ())

(* The per-connection reply buffer must be empty after write_frame /
   write_reply on EVERY exit — clean return, a peer vanishing
   mid-write, an injected fault — or the next encode on the reused
   buffer would prepend the stale bytes of the previous reply. *)
let test_write_frame_clears_buffer () =
  Service.Conn.ignore_sigpipe ();
  let buf = Buffer.create 64 in
  (* Clean write. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Buffer.add_string buf "\005\000\000\000hello";
  Service.Conn.write_frame a buf;
  Alcotest.(check int) "cleared after a clean write" 0 (Buffer.length buf);
  let tmp = Bytes.create 64 in
  Alcotest.(check int) "peer got the frame" 9 (Unix.read b tmp 0 64);
  (* Peer gone: the write raises, the buffer must still be clean. *)
  Unix.close b;
  Buffer.add_string buf (String.make (1 lsl 20) 'x');
  (match Service.Conn.write_frame a buf with
  | () -> Alcotest.fail "write to a closed peer should raise"
  | exception (Service.Conn.Closed | Unix.Unix_error _) -> ());
  Alcotest.(check int) "cleared when the write raises" 0 (Buffer.length buf);
  Unix.close a;
  (* Injected faults: both cut the frame and raise Closed; neither may
     leave the truncated reply behind in the buffer. *)
  List.iter
    (fun arm ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let faults = Service.Conn.Faults.create () in
      arm faults 1;
      Buffer.add_string buf "\010\000\000\000truncated!";
      (match Service.Conn.write_reply ~faults a buf with
      | () -> Alcotest.fail "armed fault should raise Closed"
      | exception Service.Conn.Closed -> ());
      Alcotest.(check int) "cleared across the fault path" 0
        (Buffer.length buf);
      Unix.close a;
      Unix.close b)
    [ Service.Conn.Faults.arm_truncate_reply;
      Service.Conn.Faults.arm_close_mid_frame ]

(* ------------------------------------------------------------------ *)
(* The event-loop backend: reply-trace identity with the threaded
   backend, partial-frame reassembly, per-connection error
   containment, and high fan-in. *)

let tmp_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "kvd-%s-%d.sock" tag (Unix.getpid ()))

(* A deterministic per-connection request stream over a private key
   range, so each connection's reply sequence is independent of
   cross-connection interleaving. *)
let conn_stream ~conn ~n =
  List.init n (fun i ->
      let key = (conn * 1000) + (i mod 7) in
      match i mod 4 with
      | 0 -> Service.Codec.Put { key; value = (conn * 100_000) + i }
      | 1 -> Service.Codec.Get key
      | 2 ->
          Service.Codec.Cas
            { key; expected = (conn * 100_000) + i - 2; desired = i }
      | _ -> Service.Codec.Del key)

(* Run [nconns] lockstep round-trip clients against the server at
   [path]; returns the reply payload trace (raw bytes) per conn. *)
let drive_conns ~path ~nconns ~n =
  let fds = Array.init nconns (fun _ -> Service.Conn.connect_unix ~path) in
  let traces = Array.make nconns [] in
  let out = Buffer.create 64 in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        fds)
    (fun () ->
      for i = 0 to n - 1 do
        Array.iteri
          (fun c fd ->
            Buffer.clear out;
            Service.Codec.encode_request out
              (List.nth (conn_stream ~conn:c ~n) i);
            Service.Conn.write_frame fd out)
          fds;
        Array.iteri
          (fun c fd ->
            match Service.Conn.read_frame fd with
            | Some payload -> traces.(c) <- payload :: traces.(c)
            | None -> Alcotest.failf "conn %d: eof at op %d" c i)
          fds
      done;
      Array.map List.rev traces)

let with_server ~backend ~tag ?(clients = 8) f =
  let path = tmp_sock tag in
  let svc = make_svc ~shards:2 ~clients () in
  let server = Service.Conn.serve_unix svc ~path ~backend () in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      svc.Service.Shard.stop ())
    (fun () -> f path)

let test_evloop_trace_identity () =
  (* The same 24-connection seeded load over both backends must
     produce byte-identical per-connection reply traces.  (The
     threaded run needs a tid per connection; the evloop holds every
     connection on one.) *)
  let nconns = 24 and n = 16 in
  let threaded =
    with_server ~backend:`Threaded ~tag:"evt" ~clients:(nconns + 1) (fun path ->
        drive_conns ~path ~nconns ~n)
  in
  let evloop =
    with_server ~backend:(`Evloop `Auto) ~tag:"eve" ~clients:2 (fun path ->
        drive_conns ~path ~nconns ~n)
  in
  Array.iteri
    (fun c t ->
      let e = evloop.(c) in
      Alcotest.(check int)
        (Printf.sprintf "conn %d reply count" c)
        (List.length t) (List.length e);
      List.iteri
        (fun i (a, b) ->
          if not (Bytes.equal a b) then
            Alcotest.failf "conn %d op %d: threaded %s vs evloop %s" c i
              (Service.Codec.reply_to_string (Service.Codec.reply_of_payload a))
              (Service.Codec.reply_to_string (Service.Codec.reply_of_payload b)))
        (List.combine t e))
    threaded

let test_evloop_select_backend () =
  (* The portable select fallback behind the same interface. *)
  with_server ~backend:(`Evloop `Select) ~tag:"evs" ~clients:2 (fun path ->
      let fd = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Alcotest.(check string)
            "put" "CREATED"
            (Service.Codec.reply_to_string
               (Service.Conn.call_fd fd
                  (Service.Codec.Put { key = 3; value = 33 })));
          Alcotest.(check string)
            "get" "VALUE 33"
            (Service.Codec.reply_to_string
               (Service.Conn.call_fd fd (Service.Codec.Get 3)))))

let test_evloop_drip_feed () =
  (* A slow client dribbling one byte at a time must be reassembled by
     the per-connection frame reader; a second frame split across
     writes likewise.  The loop must keep serving a fast client in
     parallel the whole time. *)
  with_server ~backend:(`Evloop `Auto) ~tag:"evd" ~clients:2 (fun path ->
      let slow = Service.Conn.connect_unix ~path in
      let fast = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close slow with Unix.Unix_error _ -> ());
          try Unix.close fast with Unix.Unix_error _ -> ())
        (fun () ->
          let buf = Buffer.create 32 in
          Service.Codec.encode_request buf
            (Service.Codec.Put { key = 9; value = 90 });
          let b = Buffer.to_bytes buf in
          Bytes.iteri
            (fun i _ ->
              ignore (Unix.write slow b i 1);
              (* The fast client round-trips between every dripped
                 byte: one stalled peer never blocks the loop. *)
              ignore (Service.Conn.call_fd fast (Service.Codec.Get 0)))
            b;
          (match Service.Conn.read_frame slow with
          | Some p ->
              Alcotest.(check string)
                "dripped put answered" "CREATED"
                (Service.Codec.reply_to_string
                   (Service.Codec.reply_of_payload p))
          | None -> Alcotest.fail "dripped put: eof");
          (* Two frames, split mid-header of the second. *)
          Buffer.clear buf;
          Service.Codec.encode_request buf (Service.Codec.Get 9);
          Service.Codec.encode_request buf (Service.Codec.Get 9);
          let b = Buffer.to_bytes buf in
          let cut = (Bytes.length b / 2) + 2 in
          ignore (Unix.write slow b 0 cut);
          Unix.sleepf 0.02;
          ignore (Unix.write slow b cut (Bytes.length b - cut));
          for _ = 1 to 2 do
            match Service.Conn.read_frame slow with
            | Some p ->
                Alcotest.(check string)
                  "split-frame get" "VALUE 90"
                  (Service.Codec.reply_to_string
                     (Service.Codec.reply_of_payload p))
            | None -> Alcotest.fail "split frame: eof"
          done))

let test_evloop_containment () =
  (* A connection sending an insane length prefix is dropped; its
     neighbour keeps being served by the same pump. *)
  with_server ~backend:(`Evloop `Auto) ~tag:"evb" ~clients:2 (fun path ->
      let bad = Service.Conn.connect_unix ~path in
      let good = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close bad with Unix.Unix_error _ -> ());
          try Unix.close good with Unix.Unix_error _ -> ())
        (fun () ->
          ignore
            (Service.Conn.call_fd good (Service.Codec.Put { key = 1; value = 2 }));
          let junk = Bytes.of_string "\xff\xff\xff\xff garbage" in
          ignore (Unix.write bad junk 0 (Bytes.length junk));
          (* The server closes [bad]; reading it hits EOF. *)
          Alcotest.(check bool)
            "bad conn closed" true
            (match Service.Conn.read_frame bad with
            | None -> true
            | Some _ -> false
            | exception (Service.Conn.Closed | Unix.Unix_error _) -> true);
          Alcotest.(check string)
            "good conn survives" "VALUE 2"
            (Service.Codec.reply_to_string
               (Service.Conn.call_fd good (Service.Codec.Get 1)))))

let test_evloop_pipelined_backpressure () =
  (* One connection pipelines far more than a socket buffer of
     requests while a separate domain consumes the replies: the
     server's short-write resume and output watermarks carry the
     backlog, and every reply arrives in request order. *)
  with_server ~backend:(`Evloop `Auto) ~tag:"evp" ~clients:2 (fun path ->
      let fd = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let n = 20_000 in
          ignore
            (Service.Conn.call_fd fd (Service.Codec.Put { key = 1; value = 7 }));
          let reader =
            Domain.spawn (fun () ->
                let rd = Service.Conn.reader_of_fd fd in
                let ok = ref 0 in
                (try
                   for _ = 1 to n do
                     match Service.Conn.read_next rd with
                     | Some p -> (
                         match Service.Codec.reply_of_payload p with
                         | Service.Codec.Value 7 -> incr ok
                         | r ->
                             Alcotest.failf "unexpected reply %s"
                               (Service.Codec.reply_to_string r))
                     | None -> ()
                   done
                 with Service.Conn.Closed -> ());
                !ok)
          in
          let out = Buffer.create 64 in
          for _ = 1 to n do
            Service.Codec.encode_request out (Service.Codec.Get 1);
            Service.Conn.write_frame fd out
          done;
          let ok = Domain.join reader in
          Alcotest.(check int) "all pipelined replies arrived" n ok))

let test_evloop_fanin_512 () =
  (* ≥512 concurrent connections on one daemon, held by the single
     pump domain — far beyond what thread-per-connection can hold —
     with every reply byte-checked against the expected encoding. *)
  let nconns = 512 and nops = 6 in
  with_server ~backend:(`Evloop `Auto) ~tag:"evf" ~clients:2 (fun path ->
      let fds = Array.init nconns (fun _ -> Service.Conn.connect_unix ~path) in
      Fun.protect
        ~finally:(fun () ->
          Array.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            fds)
        (fun () ->
          let ndrivers = 4 in
          let per = nconns / ndrivers in
          let driver d () =
            let lo = d * per and hi = ((d + 1) * per) - 1 in
            let out = Buffer.create 32 in
            let bad = ref 0 in
            for op = 0 to nops - 1 do
              for c = lo to hi do
                Buffer.clear out;
                Service.Codec.encode_request out
                  (match op mod 3 with
                  | 0 -> Service.Codec.Put { key = c; value = c }
                  | 1 -> Service.Codec.Get c
                  | _ -> Service.Codec.Del c);
                Service.Conn.write_frame fds.(c) out
              done;
              for c = lo to hi do
                match Service.Conn.read_frame fds.(c) with
                | Some payload ->
                    let got = Service.Codec.reply_of_payload payload in
                    let want =
                      (* put/del alternate, so every put sees a fresh key *)
                      match op mod 3 with
                      | 0 -> Service.Codec.Created
                      | 1 -> Service.Codec.Value c
                      | _ -> Service.Codec.Deleted
                    in
                    if got <> want then incr bad
                | None -> incr bad
              done
            done;
            !bad
          in
          let domains =
            List.init ndrivers (fun d -> Domain.spawn (driver d))
          in
          let bad = List.fold_left (fun a d -> a + Domain.join d) 0 domains in
          Alcotest.(check int) "512-conn fan-in: every reply exact" 0 bad))

let test_evloop_parked_request_recheck () =
  (* A request that passed the ext check at dispatch can park in the
     pump's backpressure queue while the verdict changes (a cluster
     freeze flipping slot ownership).  The loop must re-consult ext at
     submission: parked writes answer the NEW verdict — with the
     consumer parked and the mailbox full at [cap], exactly the first
     [cap] writes execute and every later one bounces. *)
  let redirect = Atomic.make false in
  let ext req =
    match req with
    | Service.Codec.Put _ when Atomic.get redirect ->
        Some (Service.Codec.Moved { slot = 0; node = 1 })
    | _ -> None
  in
  let path = tmp_sock "evr" in
  let cap = 4 in
  let svc = make_svc ~shards:1 ~clients:2 ~mailbox_capacity:cap () in
  let server =
    Service.Conn.serve_unix svc ~path ~ext ~backend:(`Evloop `Auto) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      svc.Service.Shard.stop ())
    (fun () ->
      let fd = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          svc.Service.Shard.set_stalled ~shard:0 true;
          while not (svc.Service.Shard.is_parked 0) do
            Domain.cpu_relax ()
          done;
          let n = cap + 6 in
          let out = Buffer.create 32 in
          for k = 1 to n do
            Buffer.clear out;
            Service.Codec.encode_request out
              (Service.Codec.Put { key = k; value = k });
            Service.Conn.write_frame fd out
          done;
          (* The parked consumer guarantees an undrained mailbox, so
             depth reaching [cap] means the pump has dispatched the
             first [cap] writes into it; the overflow is parked (or
             still unread — either way, unsubmitted). *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          while
            svc.Service.Shard.shard_depth 0 < cap
            && Unix.gettimeofday () < deadline
          do
            Unix.sleepf 0.001
          done;
          Alcotest.(check int)
            "mailbox full under the parked consumer" cap
            (svc.Service.Shard.shard_depth 0);
          Atomic.set redirect true;
          svc.Service.Shard.set_stalled ~shard:0 false;
          for k = 1 to n do
            match Service.Conn.read_frame fd with
            | None -> Alcotest.failf "eof at reply %d" k
            | Some p -> (
                let got = Service.Codec.reply_of_payload p in
                let want =
                  if k <= cap then Service.Codec.Created
                  else Service.Codec.Moved { slot = 0; node = 1 }
                in
                if got <> want then
                  Alcotest.failf "reply %d: got %s, want %s" k
                    (Service.Codec.reply_to_string got)
                    (Service.Codec.reply_to_string want))
          done))

let test_evloop_poison_ext () =
  (* An ext handler that raises costs the request an [Error] reply,
     never the pump — on both the inline path and the deferred
     worker. *)
  let ext req =
    match req with
    | Service.Codec.Cl_info | Service.Codec.Cl_release _ -> failwith "boom"
    | _ -> None
  in
  let defer = function Service.Codec.Cl_release _ -> true | _ -> false in
  let path = tmp_sock "evx" in
  let svc = make_svc ~shards:1 ~clients:2 () in
  let server =
    Service.Conn.serve_unix svc ~path ~ext ~ext_defer:defer
      ~backend:(`Evloop `Auto) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      svc.Service.Shard.stop ())
    (fun () ->
      let fd = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let is_error = function
            | Service.Codec.Error _ -> true
            | _ -> false
          in
          Alcotest.(check bool)
            "inline poison answered with Error" true
            (is_error (Service.Conn.call_fd fd Service.Codec.Cl_info));
          Alcotest.(check bool)
            "deferred poison answered with Error" true
            (is_error
               (Service.Conn.call_fd fd (Service.Codec.Cl_release { slot = 0 })));
          (* The pump survived both: the same connection still serves
             data, and so does a fresh one. *)
          Alcotest.(check string)
            "same conn serves data" "CREATED"
            (Service.Codec.reply_to_string
               (Service.Conn.call_fd fd
                  (Service.Codec.Put { key = 1; value = 1 })));
          let fd2 = Service.Conn.connect_unix ~path in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd2 with Unix.Unix_error _ -> ())
            (fun () ->
              Alcotest.(check string)
                "fresh conn served" "VALUE 1"
                (Service.Codec.reply_to_string
                   (Service.Conn.call_fd fd2 (Service.Codec.Get 1))))))

(* ------------------------------------------------------------------ *)
(* Loadgen determinism and the Zipf table cache *)

let test_loadgen_determinism () =
  let dist = Workload.Keydist.zipf ~theta:0.9 ~range:1000 () in
  let mix = Service.Loadgen.read_mostly in
  let stream tid =
    Service.Loadgen.request_stream ~seed:99 ~tid ~dist ~mix ~n:200
  in
  Alcotest.(check bool)
    "same (seed, tid) reproduces the stream" true
    (stream 0 = stream 0);
  Alcotest.(check bool) "different tids differ" true (stream 0 <> stream 1);
  let other =
    Service.Loadgen.request_stream ~seed:100 ~tid:0 ~dist ~mix ~n:200
  in
  Alcotest.(check bool) "different seeds differ" true (stream 0 <> other)

let test_zipf_cache () =
  let before = Workload.Keydist.zipf_cache_builds () in
  let d1 = Workload.Keydist.zipf ~theta:0.77 ~range:4321 () in
  let after_first = Workload.Keydist.zipf_cache_builds () in
  Alcotest.(check int) "first build" (before + 1) after_first;
  let d2 = Workload.Keydist.zipf ~theta:0.77 ~range:4321 () in
  Alcotest.(check int)
    "identical params hit the cache" after_first
    (Workload.Keydist.zipf_cache_builds ());
  ignore (Workload.Keydist.zipf ~theta:0.78 ~range:4321 ());
  Alcotest.(check int)
    "new theta builds" (after_first + 1)
    (Workload.Keydist.zipf_cache_builds ());
  (* Cached and fresh tables draw identically. *)
  let r1 = Prims.Rng.create ~seed:5 and r2 = Prims.Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int)
      "same draws" (Workload.Keydist.draw d1 r1)
      (Workload.Keydist.draw d2 r2)
  done

let test_scheme_aliases () =
  Alcotest.(check string)
    "ebr aliases Epoch" "Epoch"
    (Workload.Registry.find_scheme "ebr").Workload.Registry.s_name;
  Alcotest.(check string)
    "hyaline1s normalizes" "Hyaline-1S"
    (Workload.Registry.find_scheme "hyaline1s").Workload.Registry.s_name

let test_slo () =
  let slo =
    Service.Slo.create
      ~objectives:[ { Service.Slo.quantile = 0.99; limit_ns = 1_000_000 } ]
      ()
  in
  for _ = 1 to 1000 do
    Service.Slo.record slo ~ns:1000
  done;
  Alcotest.(check bool) "meets objective" false (Service.Slo.violated slo);
  Alcotest.(check bool)
    "p50 bound is conservative" true
    (Service.Slo.p50 slo >= 1000);
  (* 30 outliers: comfortably past both the 99th and 99.9th ranks. *)
  for _ = 1 to 30 do
    Service.Slo.record slo ~ns:50_000_000
  done;
  Alcotest.(check bool)
    "p99.9 sees the outliers" true
    (Service.Slo.p999 slo >= 10_000_000);
  Alcotest.(check bool) "objective now violated" true (Service.Slo.violated slo)

let suites =
  [
    ( "service.codec",
      [
        Alcotest.test_case "request round-trips" `Quick test_codec_requests;
        Alcotest.test_case "reply round-trips" `Quick test_codec_replies;
        Alcotest.test_case "malformed payloads" `Quick test_codec_malformed;
      ] );
    ( "service.mailbox",
      [ Alcotest.test_case "bounds and FIFO" `Quick test_mailbox_bounds ] );
    ( "service.shard",
      [
        Alcotest.test_case "loopback opcodes" `Quick test_loopback_opcodes;
        Alcotest.test_case "shed at capacity" `Quick test_shed_at_capacity;
        Alcotest.test_case "unix socket round-trip" `Quick test_unix_socket;
        Alcotest.test_case "abrupt disconnects release client slots" `Quick
          test_abrupt_disconnect_releases_tids;
        Alcotest.test_case "reply buffer cleared on every write exit" `Quick
          test_write_frame_clears_buffer;
      ] );
    ( "service.evloop",
      [
        Alcotest.test_case "select backend round-trip" `Quick
          test_evloop_select_backend;
        Alcotest.test_case "reply-trace identity vs threaded" `Quick
          test_evloop_trace_identity;
        Alcotest.test_case "drip-feed partial frames" `Quick
          test_evloop_drip_feed;
        Alcotest.test_case "per-connection error containment" `Quick
          test_evloop_containment;
        Alcotest.test_case "pipelined backlog under backpressure" `Quick
          test_evloop_pipelined_backpressure;
        Alcotest.test_case "512-connection fan-in" `Quick test_evloop_fanin_512;
        Alcotest.test_case "parked requests re-check ext at submission"
          `Quick test_evloop_parked_request_recheck;
        Alcotest.test_case "raising ext poisons the request, not the pump"
          `Quick test_evloop_poison_ext;
      ] );
    ( "service.loadgen",
      [
        Alcotest.test_case "fixed-seed determinism" `Quick
          test_loadgen_determinism;
        Alcotest.test_case "zipf table cache" `Quick test_zipf_cache;
        Alcotest.test_case "scheme aliases" `Quick test_scheme_aliases;
        Alcotest.test_case "slo percentiles" `Quick test_slo;
      ] );
  ]
