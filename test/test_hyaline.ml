(* Tests for the Hyaline family: unit tests of the building blocks,
   a white-box replay of the paper's Figure 2a scenario, the generic
   scheme battery over every variant/backend, robustness contrasts,
   adaptive resizing, and randomized accounting properties. *)

open Smr
open Hyaline_core
open Test_support

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Adjs *)

let test_adjs_values () =
  Alcotest.(check int) "k=1" 0 (Adjs.of_k 1);
  Alcotest.(check int) "k=2" (1 lsl 62) (Adjs.of_k 2);
  Alcotest.(check int) "k=8 (paper example 2^61 for N=64 ~ 2^60 here)"
    (1 lsl 60) (Adjs.of_k 8);
  Alcotest.check_raises "k=3 rejected"
    (Invalid_argument "Adjs.log2: not a power of two") (fun () ->
      ignore (Adjs.of_k 3))

let test_adjs_log2 () =
  Alcotest.(check int) "log2 1" 0 (Adjs.log2 1);
  Alcotest.(check int) "log2 128" 7 (Adjs.log2 128)

let test_next_pow2 () =
  List.iter
    (fun (n, p) -> Alcotest.(check int) (Printf.sprintf "np2 %d" n) p (Adjs.next_pow2 n))
    [ (1, 1); (2, 2); (3, 4); (72, 128); (128, 128); (129, 256) ]

let prop_adjs_wraps =
  QCheck.Test.make ~name:"k * Adjs = 0 (mod 2^63) for all pow2 k" ~count:62
    QCheck.(int_range 0 61)
    (fun l ->
      let k = 1 lsl l in
      let adjs = Adjs.of_k k in
      (* k * adjs as wrapping multiplication *)
      k * adjs = 0)

let prop_adjs_partial_nonzero =
  QCheck.Test.make ~name:"m * Adjs <> 0 for 0 < m < k" ~count:100
    QCheck.(pair (int_range 1 16) (int_range 1 1000))
    (fun (l, m') ->
      let k = 1 lsl l in
      let m = 1 + (m' mod (k - 1 + 1)) in
      if m >= k then QCheck.assume_fail ()
      else m * Adjs.of_k k <> 0)

(* ------------------------------------------------------------------ *)
(* Directory *)

let test_directory_basic () =
  let counter = ref 0 in
  let d =
    Directory.create ~kmin:4 (fun () ->
        incr counter;
        !counter)
  in
  Alcotest.(check int) "kmin" 4 (Directory.kmin d);
  Alcotest.(check int) "initial capacity" 4 (Directory.capacity d);
  Alcotest.(check int) "level-0 slots created" 4 !counter;
  (* Slots are stable distinct cells. *)
  let s0 = Directory.get d 0 and s3 = Directory.get d 3 in
  Alcotest.(check bool) "distinct" true (s0 <> s3);
  Alcotest.(check bool) "stable" true (Directory.get d 0 = s0)

let test_directory_growth () =
  let d = Directory.create ~kmin:4 (fun () -> Atomic.make 0) in
  Directory.ensure d ~k:8;
  Alcotest.(check int) "capacity 8" 8 (Directory.capacity d);
  Directory.ensure d ~k:32;
  Alcotest.(check int) "capacity 32" 32 (Directory.capacity d);
  (* All 32 slots addressable and distinct cells. *)
  let cells = List.init 32 (Directory.get d) in
  List.iteri (fun i c -> Atomic.set c i) cells;
  List.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "cell %d" i) i (Atomic.get c))
    cells

let test_directory_unpublished () =
  let d = Directory.create ~kmin:4 (fun () -> ()) in
  Alcotest.check_raises "slot 4 not yet published"
    (Invalid_argument "Directory.get: slot not yet published") (fun () ->
      Directory.get d 4)

let test_directory_ensure_idempotent () =
  let d = Directory.create ~kmin:2 (fun () -> ref 0) in
  Directory.ensure d ~k:16;
  let c5 = Directory.get d 5 in
  Directory.ensure d ~k:16;
  Directory.ensure d ~k:8;
  Alcotest.(check bool) "cells survive re-ensure" true
    (Directory.get d 5 == c5)

let test_directory_concurrent_growth () =
  let d = Directory.create ~kmin:2 (fun () -> Atomic.make 0) in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Directory.ensure d ~k:64))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "capacity 64" 64 (Directory.capacity d);
  (* Exactly one winner per level: writing through any published cell
     must be visible through the same cell later. *)
  Atomic.set (Directory.get d 63) 99;
  Alcotest.(check int) "stable winner" 99 (Atomic.get (Directory.get d 63))

(* ------------------------------------------------------------------ *)
(* Granule / LL-SC *)

let test_granule_ll_sc () =
  let g = Granule.make () in
  let h = Hdr.create () in
  let tok = Granule.ll g in
  Alcotest.(check int) "initial href" 0 (Granule.href tok);
  Alcotest.(check bool) "sc succeeds" true (Granule.sc g tok ~href:1 ~hptr:h);
  let href, hptr = Granule.peek g in
  Alcotest.(check int) "href stored" 1 href;
  Alcotest.(check bool) "hptr stored" true (hptr == h)

let test_granule_sc_fails_on_interference () =
  let g = Granule.make () in
  let tok = Granule.ll g in
  (* Interfering write to the *other* word of the granule. *)
  let tok2 = Granule.ll g in
  assert (Granule.sc g tok2 ~href:0 ~hptr:(Hdr.create ()));
  Alcotest.(check bool) "reservation lost" false
    (Granule.sc g tok ~href:5 ~hptr:(Granule.hptr tok))

let test_granule_spurious_injection () =
  let g = Granule.make ~spurious_every:3 () in
  let fails = ref 0 in
  for _ = 1 to 300 do
    let tok = Granule.ll g in
    if not (Granule.sc g tok ~href:Granule.(href tok) ~hptr:(Granule.hptr tok))
    then incr fails
  done;
  Alcotest.(check int) "one in three SCs fails spuriously" 100 !fails

let test_llsc_head_ops () =
  let h = Llsc_head.make () in
  let s0 = Llsc_head.read h in
  Alcotest.(check int) "initial href" 0 s0.Snap.href;
  let old = Llsc_head.enter_faa h in
  Alcotest.(check int) "faa returns old" 0 old.Snap.href;
  Alcotest.(check int) "faa incremented" 1 (Llsc_head.read h).Snap.href;
  let cur = Llsc_head.read h in
  let n = Hdr.create () in
  Alcotest.(check bool) "cas_ptr ok" true
    (Llsc_head.cas_ptr h ~expected:cur n);
  Alcotest.(check bool) "hptr swung" true ((Llsc_head.read h).Snap.hptr == n);
  (* Stale expected fails. *)
  Alcotest.(check bool) "stale cas_ref fails" false
    (Llsc_head.cas_ref h ~expected:cur 7)

let test_llsc_faa_with_spurious () =
  Llsc_head.spurious_every := 2;
  Fun.protect ~finally:(fun () -> Llsc_head.spurious_every := 0) @@ fun () ->
  let h = Llsc_head.make () in
  (* enter_faa must ride through injected SC failures. *)
  for i = 0 to 99 do
    let old = Llsc_head.enter_faa h in
    Alcotest.(check int) "monotonic" i old.Snap.href
  done

(* ------------------------------------------------------------------ *)
(* Packed head backend: the single-word encoding and its bit budget.
   A snap is an immediate int, so pack/unpack must roundtrip exactly
   at every field-width boundary and the overflow guard must reject
   anything the 22-bit reference count or 40-bit index cannot hold. *)

let test_packed_roundtrip () =
  let module P = Head.Packed in
  let href_err = Invalid_argument "Head.Packed.pack: href out of range" in
  let index_err = Invalid_argument "Head.Packed.pack: index out of range" in
  List.iter
    (fun href ->
      List.iter
        (fun index ->
          let s = P.pack_raw ~href ~index in
          Alcotest.(check int)
            (Printf.sprintf "href roundtrip %d/%d" href index)
            href (P.href s);
          Alcotest.(check int)
            (Printf.sprintf "index roundtrip %d/%d" href index)
            index (P.index s))
        [ 0; 1; P.max_index - 1; P.max_index ])
    [ 0; 1; P.max_href - 1; P.max_href ];
  Alcotest.check_raises "href overflow" href_err (fun () ->
      ignore (P.pack_raw ~href:(P.max_href + 1) ~index:0));
  Alcotest.check_raises "href negative" href_err (fun () ->
      ignore (P.pack_raw ~href:(-1) ~index:0));
  Alcotest.check_raises "index overflow" index_err (fun () ->
      ignore (P.pack_raw ~href:0 ~index:(P.max_index + 1)));
  Alcotest.check_raises "index negative" index_err (fun () ->
      ignore (P.pack_raw ~href:0 ~index:(-1)));
  (* Index 0 is the nil sentinel; real headers decode through the uid
     registry to the exact same physical header. *)
  Alcotest.(check bool) "index 0 decodes to nil" true
    (Hdr.is_nil (P.hptr (P.pack_raw ~href:5 ~index:0)));
  let h = Hdr.create () in
  let s = P.pack ~href:3 h in
  Alcotest.(check bool) "hptr roundtrip is physical" true (P.hptr s == h);
  Alcotest.(check int) "href rides along" 3 (P.href s)

let test_packed_head_ops () =
  let module P = Head.Packed in
  let head = P.make () in
  let s0 = P.read head in
  Alcotest.(check int) "initial href" 0 (P.href s0);
  Alcotest.(check bool) "initial hptr nil" true (Hdr.is_nil (P.hptr s0));
  let old = P.enter_faa head in
  Alcotest.(check int) "faa returns old" 0 (P.href old);
  Alcotest.(check int) "faa incremented" 1 (P.href (P.read head));
  let cur = P.read head in
  let n = Hdr.create () in
  Alcotest.(check bool) "cas_ptr ok" true (P.cas_ptr head ~expected:cur n);
  let cur' = P.read head in
  Alcotest.(check bool) "hptr swung" true (P.hptr cur' == n);
  Alcotest.(check int) "href preserved across cas_ptr" 1 (P.href cur');
  Alcotest.(check bool) "stale cas_ref fails" false
    (P.cas_ref head ~expected:cur 7);
  Alcotest.(check bool) "cas_ref ok" true (P.cas_ref head ~expected:cur' 0);
  let final = P.read head in
  Alcotest.(check int) "href updated" 0 (P.href final);
  Alcotest.(check bool) "hptr preserved across cas_ref" true
    (P.hptr final == n)

(* The tentpole's raison d'être: an uncontended enter/leave bracket on
   the packed backend performs no minor-heap allocation.  1_000
   brackets must allocate fewer than 1_000 words total — sub-one word
   per bracket proves the steady-state path is allocation-free (the
   slack absorbs the [Gc.minor_words] float boxing and any one-off
   lazy initialization). *)
let test_packed_bracket_zero_alloc (module T : Tracker.S) () =
  let t = T.create { Config.default with nthreads = 2 } in
  for _ = 1 to 100 do
    T.enter t ~tid:0;
    T.leave t ~tid:0
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1_000 do
    T.enter t ~tid:0;
    T.leave t ~tid:0
  done;
  let after = Gc.minor_words () in
  let per_bracket = (after -. before) /. 1_000. in
  if after -. before >= 1_000. then
    Alcotest.failf "packed bracket allocates: %.2f words/bracket" per_bracket

(* ------------------------------------------------------------------ *)
(* Regression for the packed tombstone/ABA window: a stale snapshot
   whose head node was freed in between decodes to the registry's
   tombstone, yet the value-based CAS can still ABA-succeed (the uid
   survives recycling and the word can revisit its old bits) — which
   used to link the shared sentinel into a live retirement list,
   sending traverse into an infinite loop (tombstone.next ==
   tombstone) and corrupting its nref.  Mock backends reproduce the
   interleaving deterministically: the first decode yields the real
   tombstone, every CAS "succeeds" (the ABA revisit).  The insert
   paths must reject the tombstone and retry from a fresh read, so
   the successful insertion links the real predecessor. *)

let fresh_tombstone () =
  let h = Hdr.create () in
  Hdr.set_retired h;
  Hdr.set_freed h;
  let t = Hdr.of_uid h.Hdr.uid in
  Hdr.set_live h;
  t

let test_insert_batch_tombstone_retry () =
  let tomb = fresh_tombstone () in
  Alcotest.(check bool) "mock sentinel is the tombstone" true
    (Hdr.is_tombstone tomb);
  let prev = Hdr.create () in
  prev.Hdr.ref_node <- prev;
  let decodes = ref 0 in
  let linked = ref Hdr.nil in
  let module Aba = struct
    type t = unit
    type snap = int

    let backend = "aba-mock"
    let make () = ()
    let read () = 1 (* href = 1: the slot looks occupied, so insert *)
    let enter_faa _ = assert false
    let cas_ref _ ~expected:_ _ = assert false

    (* Always succeed — the ABA revisit a value CAS cannot detect. *)
    let cas_ptr _ ~expected:_ n =
      Alcotest.(check bool) "tombstone never linked" false
        (Hdr.is_tombstone n.Hdr.next);
      linked := n;
      true

    let href s = s

    (* The first decode races the freed window; any re-read decodes
       the (recycled) real predecessor, as uid permanence
       guarantees. *)
    let hptr _ =
      incr decodes;
      if !decodes = 1 then tomb else prev
  end in
  let module I = Internal.Make (Aba) in
  let b = Batch.create () in
  List.iter (Batch.add b) [ Hdr.create (); Hdr.create () ];
  let refnode = Batch.seal b ~adjs:0 in
  let reap = Internal.new_reap () in
  I.insert_batch
    (fun _ -> ())
    ~k:1 refnode
    ~skip:(fun ~slot:_ -> false)
    ~after_insert:(fun ~slot:_ ~href:_ -> ())
    reap;
  Alcotest.(check int) "tombstone decode retried exactly once" 2 !decodes;
  Alcotest.(check bool) "inserted node links the real predecessor" true
    (!linked.Hdr.next == prev)

let test_hyaline1_retire_tombstone_retry () =
  let tomb = fresh_tombstone () in
  let prev = Hdr.create () in
  prev.Hdr.ref_node <- prev;
  let decodes = ref 0 in
  let linked = ref Hdr.nil in
  let module W : Hyaline1_core.WORD = struct
    type t = unit
    type word = int

    let backend = "aba-mock"
    let make () = ()

    (* Bit 0 = presence, as in Packed_word: the slot reads active and
       non-empty, so retire takes the insert path. *)
    let get () = 3
    let exchange_active () = 0
    let exchange_idle () = 1

    let cas_insert _ ~expected:_ n =
      Alcotest.(check bool) "tombstone never linked" false
        (Hdr.is_tombstone n.Hdr.next);
      linked := n;
      true

    let active w = w land 1 = 1
    let empty w = w lsr 1 = 0

    let hptr _ =
      incr decodes;
      if !decodes = 1 then tomb else prev
  end in
  let module T =
    Hyaline1_core.Make
      (struct
        let eras = false
      end)
      (W)
  in
  let t = T.create { Config.default with nthreads = 1; batch_min = 2 } in
  T.enter t ~tid:0;
  T.retire t ~tid:0 (Hdr.create ());
  T.retire t ~tid:0 (Hdr.create ());
  Alcotest.(check int) "tombstone decode retried exactly once" 2 !decodes;
  Alcotest.(check bool) "inserted node links the real predecessor" true
    (!linked.Hdr.next == prev);
  T.leave t ~tid:0

(* Same window in Crystalline's retire pass: the reservation word's
   era says "insert", the stale pointer half decodes to the tombstone;
   the value CAS would ABA-succeed, so the attempt must re-read. *)
let test_crystalline_retire_tombstone_retry () =
  let tomb = fresh_tombstone () in
  let prev = Hdr.create () in
  prev.Hdr.ref_node <- prev;
  let decodes = ref 0 in
  let linked = ref Hdr.nil in
  let module W : Crystalline.WORD = struct
    type t = int ref
    type word = int

    let backend = "aba-mock"
    let max_era = max_int
    let make () = ref 0

    (* The word carries just the era; [hptr] plays the stale decode. *)
    let get t = !t

    let exchange t ~era =
      let old = !t in
      t := era;
      old

    let cas_era _ ~expected:_ _ = true

    let cas_insert _ ~expected:_ n =
      Alcotest.(check bool) "tombstone never linked" false
        (Hdr.is_tombstone n.Hdr.next);
      linked := n;
      true

    let era w = w
    let empty _ = true

    let hptr _ =
      incr decodes;
      if !decodes = 1 then tomb else prev
  end in
  let module T = Crystalline.Make (W) in
  let t = T.create { Config.default with nthreads = 1; batch_min = 2 } in
  T.enter t ~tid:0;
  T.retire t ~tid:0 (Hdr.create ());
  T.retire t ~tid:0 (Hdr.create ());
  Alcotest.(check int) "tombstone decode retried exactly once" 2 !decodes;
  Alcotest.(check bool) "inserted node links the real predecessor" true
    (!linked.Hdr.next == prev);
  T.leave t ~tid:0

(* ------------------------------------------------------------------ *)
(* Batch *)

let test_batch_seal_structure () =
  let b = Batch.create () in
  let hs = List.init 5 (fun _ -> Hdr.create ()) in
  List.iter (Batch.add b) hs;
  Alcotest.(check int) "size" 5 (Batch.size b);
  let refnode = Batch.seal b ~adjs:42 in
  Alcotest.(check bool) "refnode is last added" true
    (refnode == List.nth hs 4);
  Alcotest.(check int) "adjs stored" 42 refnode.Hdr.adjs;
  Alcotest.(check int) "nref zeroed" 0 (Atomic.get refnode.Hdr.nref);
  let nodes = Batch.nodes refnode in
  Alcotest.(check int) "all nodes chained" 5 (List.length nodes);
  List.iter
    (fun h ->
      Alcotest.(check bool) "ref_node wired" true (h.Hdr.ref_node == refnode))
    nodes;
  Alcotest.(check bool) "builder reset" true (Batch.is_empty b)

let test_batch_min_birth () =
  let b = Batch.create () in
  Alcotest.(check int) "empty = max_int" max_int (Batch.min_birth b);
  let mk birth =
    let h = Hdr.create () in
    h.Hdr.birth <- birth;
    h
  in
  Batch.add b (mk 10);
  Batch.add b (mk 3);
  Batch.add b (mk 7);
  Alcotest.(check int) "min tracked" 3 (Batch.min_birth b);
  ignore (Batch.seal b ~adjs:0);
  Alcotest.(check int) "reset after seal" max_int (Batch.min_birth b)

let test_batch_seal_empty_rejected () =
  let b = Batch.create () in
  Alcotest.check_raises "empty seal" (Invalid_argument "Batch.seal: empty batch")
    (fun () -> ignore (Batch.seal b ~adjs:0))

(* ------------------------------------------------------------------ *)
(* Figure 2a white-box replay (simplified single-list version, k=1).

   Three threads interleave exactly as in the paper's worked example;
   we assert the NRef/HRef values and the reclamation points (steps
   (h) and (i)) match the narrative. *)

module H = Head.Dwcas
module I = Internal.Make (Head.Dwcas)

let test_figure_2a () =
  let stats = Stats.create () in
  let freed = Hashtbl.create 8 in
  let mk name =
    let h = Hdr.create () in
    h.Hdr.free_hook <- (fun () -> Hashtbl.replace freed name ());
    Hdr.set_retired h;
    h
  in
  let head = H.make () in
  let adjs = Adjs.of_k 1 in
  (* batch B1 = {r1 (NRef node), n1 (slot node)} *)
  let b = Batch.create () in
  let n1 = mk "n1" and r1 = mk "r1" in
  Batch.add b n1;
  Batch.add b r1;
  let ref1 = Batch.seal b ~adjs in
  assert (ref1 == r1);
  (* batch B2 = {r2, n2} *)
  let n2 = mk "n2" and r2 = mk "r2" in
  Batch.add b n2;
  Batch.add b r2;
  let ref2 = Batch.seal b ~adjs in
  let href () = (H.read head).Snap.href in
  (* (a) Thread 1 enters. *)
  let handle1 = (H.enter_faa head).Snap.hptr in
  Alcotest.(check int) "(a) HRef=1" 1 (href ());
  Alcotest.(check bool) "(a) handle1 = Null" true (Hdr.is_nil handle1);
  (* (b) Thread 1 retires N1 (batch B1); the list was empty so there is
     no predecessor to adjust. *)
  let reap = Internal.new_reap () in
  I.insert_batch (fun _ -> head) ~k:1 ref1
    ~skip:(fun ~slot:_ -> false)
    ~after_insert:(fun ~slot:_ ~href:_ -> ())
    reap;
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check bool) "(b) head -> n1" true ((H.read head).Snap.hptr == n1);
  Alcotest.(check int) "(b) B1 NRef = 0" 0 (Atomic.get r1.Hdr.nref);
  (* (c) Thread 2 enters. *)
  let handle2 = (H.enter_faa head).Snap.hptr in
  Alcotest.(check bool) "(c) handle2 = n1" true (handle2 == n1);
  Alcotest.(check int) "(c) HRef=2" 2 (href ());
  (* (d) Thread 2 starts retiring N2 but stalls after the insertion,
     before adjusting the predecessor. *)
  let snap_d = H.read head in
  let stalled_href = snap_d.Snap.href in
  n2.Hdr.next <- snap_d.Snap.hptr;
  Alcotest.(check bool) "(d) insertion CAS" true (H.cas_ptr head ~expected:snap_d n2);
  (* (e) Thread 3 enters. *)
  let handle3 = (H.enter_faa head).Snap.hptr in
  Alcotest.(check bool) "(e) handle3 = n2" true (handle3 == n2);
  Alcotest.(check int) "(e) HRef=3" 3 (href ());
  (* (f) Thread 1 leaves: dereferences the whole list through handle
     Null.  N2 is first so only HRef drops for it; N1's counter goes
     negative and nothing is reclaimed yet. *)
  let reap = Internal.new_reap () in
  let _ = I.leave_slot head ~handle:handle1 reap in
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check int) "(f) HRef=2" 2 (href ());
  Alcotest.(check int) "(f) B1 NRef = -1" (-1) (Atomic.get r1.Hdr.nref);
  Alcotest.(check int) "(f) nothing freed" 0 (Hashtbl.length freed);
  (* (g) Thread 2 resumes and completes the adjustment for N1. *)
  let reap = Internal.new_reap () in
  Internal.add_ref reap n1 (n1.Hdr.ref_node.Hdr.adjs + stalled_href);
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check int) "(g) B1 NRef = 1" 1 (Atomic.get r1.Hdr.nref);
  Alcotest.(check int) "(g) still nothing freed" 0 (Hashtbl.length freed);
  (* (h) Thread 2 leaves and deallocates N1. *)
  let reap = Internal.new_reap () in
  let _ = I.leave_slot head ~handle:handle2 reap in
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check bool) "(h) n1 freed" true (Hashtbl.mem freed "n1");
  Alcotest.(check bool) "(h) r1 freed" true (Hashtbl.mem freed "r1");
  Alcotest.(check bool) "(h) B2 survives" false (Hashtbl.mem freed "n2");
  (* (i) Thread 3 leaves and deallocates N2. *)
  let reap = Internal.new_reap () in
  let _ = I.leave_slot head ~handle:handle3 reap in
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check bool) "(i) n2 freed" true (Hashtbl.mem freed "n2");
  Alcotest.(check bool) "(i) r2 freed" true (Hashtbl.mem freed "r2");
  Alcotest.(check int) "(i) HRef=0" 0 (href ());
  Alcotest.(check bool) "(i) list empty" true
    (Hdr.is_nil (H.read head).Snap.hptr);
  ignore ref2

(* Empty-slot credits (REF #3#): a batch retired with no active thread
   anywhere frees on the spot; with one active slot it is pinned until
   that thread leaves. *)
let test_empty_slot_credits () =
  let stats = Stats.create () in
  let k = 4 in
  let heads = Array.init k (fun _ -> H.make ()) in
  let freed = ref 0 in
  let mk () =
    let h = Hdr.create () in
    h.Hdr.free_hook <- (fun () -> incr freed);
    Hdr.set_retired h;
    h
  in
  let seal_batch () =
    let b = Batch.create () in
    for _ = 1 to k + 1 do
      Batch.add b (mk ())
    done;
    Batch.seal b ~adjs:(Adjs.of_k k)
  in
  (* All slots empty: immediate reclamation. *)
  let reap = Internal.new_reap () in
  I.insert_batch (fun s -> heads.(s)) ~k (seal_batch ())
    ~skip:(fun ~slot:_ -> false)
    ~after_insert:(fun ~slot:_ ~href:_ -> ())
    reap;
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check int) "all-empty batch freed immediately" (k + 1) !freed;
  (* One active thread in slot 2: pinned until it leaves. *)
  freed := 0;
  let handle = (H.enter_faa heads.(2)).Snap.hptr in
  let reap = Internal.new_reap () in
  I.insert_batch (fun s -> heads.(s)) ~k (seal_batch ())
    ~skip:(fun ~slot:_ -> false)
    ~after_insert:(fun ~slot:_ ~href:_ -> ())
    reap;
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check int) "pinned by slot 2" 0 !freed;
  let reap = Internal.new_reap () in
  let _ = I.leave_slot heads.(2) ~handle reap in
  Internal.drain stats ~tid:0 reap;
  Alcotest.(check int) "freed once slot 2 leaves" (k + 1) !freed

(* ------------------------------------------------------------------ *)
(* The scheme battery over every variant and backend. *)

let hyaline_expect = { reclaims = true; protects = true }

(* ------------------------------------------------------------------ *)
(* Robustness: basic Hyaline(-1) pin like Epoch; the -S variants stay
   bounded (Figure 10a's contrast). *)

let robustness_tests =
  [
    Alcotest.test_case "Hyaline pins under stall" `Quick
      (test_nonrobust_pins (module Hyaline));
    Alcotest.test_case "Hyaline-1 pins under stall" `Quick
      (test_nonrobust_pins (module Hyaline1));
    Alcotest.test_case "Hyaline-S bounded under stall" `Quick
      (test_robust_bounded (module Hyaline_s));
    Alcotest.test_case "Hyaline-1S bounded under stall" `Quick
      (test_robust_bounded (module Hyaline1s));
    Alcotest.test_case "Hyaline-S(llsc) bounded under stall" `Quick
      (test_robust_bounded (module Hyaline_s.Llsc));
    Alcotest.test_case "Hyaline-S(packed) bounded under stall" `Quick
      (test_robust_bounded (module Hyaline_s.Packed));
    Alcotest.test_case "Hyaline-1S(packed) bounded under stall" `Quick
      (test_robust_bounded (module Hyaline1s.Packed));
    Alcotest.test_case "Crystalline bounded under stall" `Quick
      (test_robust_bounded (module Crystalline));
    Alcotest.test_case "Crystalline(packed) bounded under stall" `Quick
      (test_robust_bounded (module Crystalline.Packed));
  ]

(* ------------------------------------------------------------------ *)
(* Ack-driven slot avoidance and §4.3 adaptive growth: stalled threads
   poison both initial slots; with [adaptive] the slot space doubles,
   without it the k stays capped. *)

let run_adaptive ~adaptive =
  let cfg =
    {
      Config.default with
      nthreads = 4;
      slots = 2;
      batch_min = 4;
      ack_threshold = 64;
      adaptive;
      check_uaf = true;
    }
  in
  let t = Hyaline_s.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  let alloc ~tid =
    let b = Pool.alloc pool in
    b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
    Hyaline_s.alloc_hook t ~tid b.Blk.hdr;
    b
  in
  (* tids 1 and 2 map to slots 1 and 0; both enter, read once and stall
     forever. *)
  let link = Atomic.make (alloc ~tid:3) in
  Hyaline_s.enter t ~tid:1;
  ignore (Hyaline_s.read t ~tid:1 ~idx:0 link proj);
  Hyaline_s.enter t ~tid:2;
  ignore (Hyaline_s.read t ~tid:2 ~idx:0 link proj);
  (* tid 3 churns with tracked reads (keeping eras fresh wherever it
     sits) until Acks exile it from both poisoned slots. *)
  for _ = 1 to 4_000 do
    Hyaline_s.enter t ~tid:3;
    ignore (Hyaline_s.read t ~tid:3 ~idx:0 link proj);
    let b = alloc ~tid:3 in
    let old = Atomic.exchange link b in
    Hyaline_s.retire t ~tid:3 old.Blk.hdr;
    Hyaline_s.leave t ~tid:3
  done;
  Hyaline_s.flush t ~tid:3;
  (Hyaline_s.slots t, Stats.unreclaimed (Hyaline_s.stats t))

let test_adaptive_grows () =
  let slots, _ = run_adaptive ~adaptive:true in
  Alcotest.(check bool)
    (Printf.sprintf "slot space grew (k=%d)" slots)
    true (slots >= 4)

let test_capped_stays () =
  let slots, _ = run_adaptive ~adaptive:false in
  Alcotest.(check int) "k stays at the cap" 2 slots

let test_adaptive_bounds_garbage () =
  let _, unreclaimed_adaptive = run_adaptive ~adaptive:true in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive keeps garbage bounded (%d)" unreclaimed_adaptive)
    true
    (unreclaimed_adaptive < 2_000)

(* ------------------------------------------------------------------ *)
(* Pending-batch observability. *)

let test_pending_and_flush () =
  let cfg = { Config.default with nthreads = 2; slots = 2; batch_min = 16 } in
  let t = Hyaline.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  Hyaline.enter t ~tid:0;
  for i = 1 to 5 do
    let b = Pool.alloc pool in
    b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
    Hyaline.alloc_hook t ~tid:0 b.Blk.hdr;
    Hyaline.retire t ~tid:0 b.Blk.hdr;
    Alcotest.(check int) "pending grows" i (Hyaline.pending t ~tid:0)
  done;
  Hyaline.leave t ~tid:0;
  Hyaline.flush t ~tid:0;
  Alcotest.(check int) "pending drained" 0 (Hyaline.pending t ~tid:0);
  Alcotest.(check int) "pool empty" 0 (Pool.live pool);
  Alcotest.(check int) "slots" 2 (Hyaline.slots t)

(* k = 1: the simplified single-list version of §3.1 must behave
   identically through the same code path. *)
let test_single_list_version () =
  let cfg =
    { Config.default with nthreads = 2; slots = 1; batch_min = 2 }
  in
  let t = Hyaline.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  for _ = 1 to 100 do
    Hyaline.enter t ~tid:0;
    let b = Pool.alloc pool in
    b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
    Hyaline.alloc_hook t ~tid:0 b.Blk.hdr;
    Hyaline.retire t ~tid:0 b.Blk.hdr;
    Hyaline.leave t ~tid:0
  done;
  Hyaline.flush t ~tid:0;
  Hyaline.flush t ~tid:0;
  let s = Stats.snapshot (Hyaline.stats t) in
  Alcotest.(check int) "all freed" s.Stats.retires s.Stats.frees;
  Alcotest.(check int) "pool empty" 0 (Pool.live pool)

(* ------------------------------------------------------------------ *)
(* Randomized accounting property: any legal bracket/retire/trim
   script ends — after leave+flush — with every retired block freed
   exactly once (the Hdr lifecycle would catch double frees). *)

type script_op = Enter | Leave | Retire | Trim | Read

let op_gen : (int * script_op) QCheck.Gen.t =
  QCheck.Gen.(
    pair (int_range 0 2)
      (frequency
         [ (2, return Enter); (2, return Leave); (4, return Retire);
           (1, return Trim); (2, return Read) ]))

let script_arb =
  QCheck.make
    ~print:(fun l -> Printf.sprintf "<script of %d ops>" (List.length l))
    QCheck.Gen.(list_size (int_range 0 200) op_gen)

let prop_script (module S : Tracker.S) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random scripts reclaim fully" S.name)
    ~count:60 script_arb
    (fun script ->
      let cfg =
        {
          Config.default with
          nthreads = 3;
          slots = 2;
          batch_min = 3;
          check_uaf = true;
        }
      in
      let t = S.create cfg in
      let pool = Pool.create ~local_cache:0 () in
      let active = Array.make 3 false in
      let link = Atomic.make None in
      List.iter
        (fun (tid, op) ->
          match op with
          | Enter when not active.(tid) ->
              S.enter t ~tid;
              active.(tid) <- true
          | Leave when active.(tid) ->
              S.leave t ~tid;
              active.(tid) <- false
          | Retire when active.(tid) ->
              let b = Pool.alloc pool in
              b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
              S.alloc_hook t ~tid b.Blk.hdr;
              let old = Atomic.exchange link (Some b) in
              (match old with
              | Some o -> S.retire t ~tid o.Blk.hdr
              | None -> ())
          | Trim when active.(tid) -> S.trim t ~tid
          | Read when active.(tid) ->
              ignore
                (S.read t ~tid ~idx:0 link (function
                  | Some b -> proj b
                  | None -> Hdr.nil))
          | _ -> ())
        script;
      (* Quiesce. *)
      for tid = 0 to 2 do
        if active.(tid) then S.leave t ~tid
      done;
      (match Atomic.exchange link None with
      | Some last ->
          S.enter t ~tid:0;
          S.retire t ~tid:0 last.Blk.hdr;
          S.leave t ~tid:0
      | None -> ());
      for tid = 0 to 2 do
        S.flush t ~tid
      done;
      let s = Stats.snapshot (S.stats t) in
      s.Stats.retires = s.Stats.frees && Pool.live pool = 0)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "hyaline.adjs",
      [
        Alcotest.test_case "constants" `Quick test_adjs_values;
        Alcotest.test_case "log2" `Quick test_adjs_log2;
        Alcotest.test_case "next_pow2" `Quick test_next_pow2;
        qcheck prop_adjs_wraps;
        qcheck prop_adjs_partial_nonzero;
      ] );
    ( "hyaline.directory",
      [
        Alcotest.test_case "basic" `Quick test_directory_basic;
        Alcotest.test_case "growth" `Quick test_directory_growth;
        Alcotest.test_case "unpublished get" `Quick test_directory_unpublished;
        Alcotest.test_case "ensure idempotent" `Quick
          test_directory_ensure_idempotent;
        Alcotest.test_case "concurrent growth" `Slow
          test_directory_concurrent_growth;
      ] );
    ( "hyaline.llsc",
      [
        Alcotest.test_case "granule ll/sc" `Quick test_granule_ll_sc;
        Alcotest.test_case "sc fails on interference" `Quick
          test_granule_sc_fails_on_interference;
        Alcotest.test_case "spurious injection" `Quick
          test_granule_spurious_injection;
        Alcotest.test_case "Fig.7 head ops" `Quick test_llsc_head_ops;
        Alcotest.test_case "dwFAA rides spurious failures" `Quick
          test_llsc_faa_with_spurious;
      ] );
    ( "hyaline.packed-head",
      [
        Alcotest.test_case "pack/unpack boundary roundtrip" `Quick
          test_packed_roundtrip;
        Alcotest.test_case "head ops" `Quick test_packed_head_ops;
        Alcotest.test_case "Hyaline(packed) bracket allocation-free" `Quick
          (test_packed_bracket_zero_alloc (module Hyaline.Packed));
        Alcotest.test_case "Hyaline-1(packed) bracket allocation-free" `Quick
          (test_packed_bracket_zero_alloc (module Hyaline1.Packed));
        Alcotest.test_case "Crystalline(packed) bracket allocation-free" `Quick
          (test_packed_bracket_zero_alloc (module Crystalline.Packed));
        Alcotest.test_case "insert_batch rejects tombstone decode" `Quick
          test_insert_batch_tombstone_retry;
        Alcotest.test_case "hyaline-1 retire rejects tombstone decode" `Quick
          test_hyaline1_retire_tombstone_retry;
        Alcotest.test_case "crystalline retire rejects tombstone decode" `Quick
          test_crystalline_retire_tombstone_retry;
      ] );
    ( "hyaline.batch",
      [
        Alcotest.test_case "seal structure" `Quick test_batch_seal_structure;
        Alcotest.test_case "min birth" `Quick test_batch_min_birth;
        Alcotest.test_case "empty seal rejected" `Quick
          test_batch_seal_empty_rejected;
      ] );
    ( "hyaline.figure2a",
      [
        Alcotest.test_case "paper scenario replay" `Quick test_figure_2a;
        Alcotest.test_case "empty-slot credits" `Quick test_empty_slot_credits;
      ] );
    scheme_suite "hyaline" (module Hyaline) ~expect:hyaline_expect;
    scheme_suite "hyaline.llsc-backend" (module Hyaline.Llsc)
      ~expect:hyaline_expect;
    scheme_suite "hyaline-1" (module Hyaline1) ~expect:hyaline_expect;
    scheme_suite "hyaline-s" (module Hyaline_s) ~expect:hyaline_expect;
    scheme_suite "hyaline-s.llsc-backend" (module Hyaline_s.Llsc)
      ~expect:hyaline_expect;
    scheme_suite "hyaline-1s" (module Hyaline1s) ~expect:hyaline_expect;
    scheme_suite "hyaline.packed-backend" (module Hyaline.Packed)
      ~expect:hyaline_expect;
    scheme_suite "hyaline-s.packed-backend" (module Hyaline_s.Packed)
      ~expect:hyaline_expect;
    scheme_suite "hyaline-1.packed-backend" (module Hyaline1.Packed)
      ~expect:hyaline_expect;
    scheme_suite "hyaline-1s.packed-backend" (module Hyaline1s.Packed)
      ~expect:hyaline_expect;
    scheme_suite "crystalline" (module Crystalline) ~expect:hyaline_expect;
    scheme_suite "crystalline.packed-backend" (module Crystalline.Packed)
      ~expect:hyaline_expect;
    ("hyaline.robustness", robustness_tests);
    ( "hyaline.adaptive",
      [
        Alcotest.test_case "slot space grows" `Slow test_adaptive_grows;
        Alcotest.test_case "capped k stays" `Slow test_capped_stays;
        Alcotest.test_case "adaptive bounds garbage" `Slow
          test_adaptive_bounds_garbage;
      ] );
    ( "hyaline.misc",
      [
        Alcotest.test_case "pending/flush/slots" `Quick test_pending_and_flush;
        Alcotest.test_case "k=1 single-list version" `Quick
          test_single_list_version;
      ] );
    ( "hyaline.scripts",
      [
        qcheck (prop_script (module Hyaline));
        qcheck (prop_script (module Hyaline.Llsc));
        qcheck (prop_script (module Hyaline1));
        qcheck (prop_script (module Hyaline_s));
        qcheck (prop_script (module Hyaline1s));
        qcheck (prop_script (module Hyaline.Packed));
        qcheck (prop_script (module Hyaline_s.Packed));
        qcheck (prop_script (module Hyaline1.Packed));
        qcheck (prop_script (module Hyaline1s.Packed));
        qcheck (prop_script (module Crystalline));
        qcheck (prop_script (module Crystalline.Packed));
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Hyaline-S internals: era skipping and Ack accounting. *)

let test_s_stale_era_batch_frees_immediately () =
  (* A reader that never dereferences keeps its slot's access era at 0;
     batches of later-born blocks skip the slot entirely and free on
     the spot even though the reader never leaves. *)
  let cfg =
    { Config.default with nthreads = 2; slots = 2; batch_min = 2; epoch_freq = 1 }
  in
  let t = Hyaline_s.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  Hyaline_s.enter t ~tid:0;
  (* no read: slot 0's access era stays 0 *)
  for _ = 1 to 50 do
    Hyaline_s.enter t ~tid:1;
    let b = Pool.alloc pool in
    b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
    Hyaline_s.alloc_hook t ~tid:1 b.Blk.hdr;
    Hyaline_s.retire t ~tid:1 b.Blk.hdr;
    Hyaline_s.leave t ~tid:1
  done;
  Hyaline_s.flush t ~tid:1;
  let s = Stats.snapshot (Hyaline_s.stats t) in
  Alcotest.(check int)
    "all freed despite the parked bracket" s.Stats.retires s.Stats.frees;
  Hyaline_s.leave t ~tid:0

let test_s_fresh_era_batch_pinned () =
  (* Same shape, but the parked reader has dereferenced at the current
     era: its slot must now hold batches of blocks born at or before
     its access era. *)
  let cfg =
    { Config.default with nthreads = 2; slots = 1; batch_min = 2; epoch_freq = 1000 }
  in
  let t = Hyaline_s.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  let b0 = Pool.alloc pool in
  b0.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b0);
  Hyaline_s.alloc_hook t ~tid:1 b0.Blk.hdr;
  let link = Atomic.make b0 in
  Hyaline_s.enter t ~tid:0;
  ignore (Hyaline_s.read t ~tid:0 ~idx:0 link proj);
  (* era clock is not advancing (epoch_freq huge), so retired blocks
     share the reader's access era and are pinned. *)
  for _ = 1 to 20 do
    Hyaline_s.enter t ~tid:1;
    let b = Pool.alloc pool in
    b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
    Hyaline_s.alloc_hook t ~tid:1 b.Blk.hdr;
    Hyaline_s.retire t ~tid:1 b.Blk.hdr;
    Hyaline_s.leave t ~tid:1
  done;
  Hyaline_s.flush t ~tid:1;
  let s = Stats.snapshot (Hyaline_s.stats t) in
  Alcotest.(check bool)
    (Printf.sprintf "pinned while reader parked (unreclaimed %d)"
       (s.Stats.retires - s.Stats.frees))
    true
    (s.Stats.retires - s.Stats.frees > 0);
  (* Releasing the reader lets everything drain. *)
  Hyaline_s.leave t ~tid:0;
  Hyaline_s.flush t ~tid:1;
  Hyaline_s.flush t ~tid:1;
  let s = Stats.snapshot (Hyaline_s.stats t) in
  Alcotest.(check int) "drained after release" s.Stats.retires s.Stats.frees

let test_s_ack_drift_bounded_when_healthy () =
  (* With no stalled threads, Ack telescopes: after quiescence the sum
     of all Ack counters is bounded by the (now zero) thread count. *)
  let cfg =
    { Config.default with nthreads = 3; slots = 2; batch_min = 2; epoch_freq = 2 }
  in
  let t = Hyaline_s.create cfg in
  let pool = Pool.create ~local_cache:0 () in
  let link = Atomic.make None in
  let worker tid =
    for _ = 1 to 500 do
      Hyaline_s.enter t ~tid;
      ignore
        (Hyaline_s.read t ~tid ~idx:0 link (function
          | Some (b : Blk.t) -> b.Blk.hdr
          | None -> Hdr.nil));
      let b = Pool.alloc pool in
      b.Blk.hdr.Hdr.free_hook <- (fun () -> Pool.free pool b);
      Hyaline_s.alloc_hook t ~tid b.Blk.hdr;
      (match Atomic.exchange link (Some b) with
      | Some old -> Hyaline_s.retire t ~tid old.Blk.hdr
      | None -> ());
      Hyaline_s.leave t ~tid
    done
  in
  (* Run the three tids sequentially — determinism is the point here;
     concurrency is covered elsewhere. *)
  worker 0;
  worker 1;
  worker 2;
  (* Acks are not directly exposed; what we can observe is their
     behavioural consequence — no slot avoidance kicked in, and the
     books balance at quiescence. *)
  (match Atomic.exchange link None with
  | Some last ->
      Hyaline_s.enter t ~tid:0;
      Hyaline_s.retire t ~tid:0 last.Blk.hdr;
      Hyaline_s.leave t ~tid:0
  | None -> ());
  for tid = 0 to 2 do
    Hyaline_s.flush t ~tid
  done;
  let s = Stats.snapshot (Hyaline_s.stats t) in
  Alcotest.(check int) "books balance" s.Stats.retires s.Stats.frees;
  Alcotest.(check int) "slots never grew" 2 (Hyaline_s.slots t)

let hyaline_s_internals =
  ( "hyaline-s.internals",
    [
      Alcotest.test_case "stale-era slots are skipped" `Quick
        test_s_stale_era_batch_frees_immediately;
      Alcotest.test_case "fresh-era slots pin batches" `Quick
        test_s_fresh_era_batch_pinned;
      Alcotest.test_case "healthy Acks never exile" `Quick
        test_s_ack_drift_bounded_when_healthy;
    ] )

let suites = suites @ [ hyaline_s_internals ]

(* ------------------------------------------------------------------ *)
(* End-to-end weak-CAS tolerance: a full data-structure stress over
   the LL/SC backend with heavy spurious SC failure injection (every
   third SC fails).  Exercises every retry path of §4.4 at once. *)

let test_llsc_spurious_end_to_end () =
  Llsc_head.spurious_every := 3;
  Fun.protect ~finally:(fun () -> Llsc_head.spurious_every := 0)
  @@ fun () ->
  let module M = Dstruct.Hash_map.Make (Hyaline.Llsc) in
  let cfg =
    { Config.default with nthreads = 3; slots = 4; batch_min = 8; check_uaf = true }
  in
  let m = M.create ~cfg () in
  let worker tid () =
    let rng = Prims.Rng.create ~seed:(tid * 31) in
    for _ = 1 to 2_000 do
      let k = Prims.Rng.below rng 256 in
      M.enter m ~tid;
      (match Prims.Rng.below rng 3 with
      | 0 -> ignore (M.insert m ~tid k k)
      | 1 -> ignore (M.remove m ~tid k)
      | _ -> ignore (M.get m ~tid k));
      M.leave m ~tid
    done
  in
  let ds = List.init 3 (fun tid -> Domain.spawn (worker tid)) in
  List.iter Domain.join ds;
  M.check m;
  for tid = 0 to 2 do
    M.flush m ~tid;
    M.flush m ~tid
  done;
  let s = Stats.snapshot (M.stats m) in
  Alcotest.(check int) "reclamation complete under spurious SC failures"
    s.Stats.retires s.Stats.frees

let llsc_spurious_suite =
  ( "hyaline.llsc-spurious",
    [
      Alcotest.test_case "hashmap stress, SC fails 1/3" `Slow
        test_llsc_spurious_end_to_end;
    ] )

let suites = suites @ [ llsc_spurious_suite ]
