(* Tests for the explicit memory pool substrate. *)

let qcheck = QCheck_alcotest.to_alcotest

(* A minimal poolable node that records its own lifecycle so tests can
   observe what the pool did to it. *)
module Node = struct
  type t = {
    index : int;
    mutable live : bool;
    mutable alloc_count : int;
    mutable free_count : int;
  }

  let create ~index = { index; live = false; alloc_count = 0; free_count = 0 }
  let index n = n.index

  let on_alloc n =
    assert (not n.live);
    n.live <- true;
    n.alloc_count <- n.alloc_count + 1

  let on_free n =
    if not n.live then failwith "double free detected by node hook";
    n.live <- false;
    n.free_count <- n.free_count + 1
end

module Pool = Mpool.Make (Node)

let test_alloc_free_roundtrip () =
  let p = Pool.create ~local_cache:0 () in
  let n = Pool.alloc p in
  Alcotest.(check bool) "live after alloc" true n.Node.live;
  Pool.free p n;
  Alcotest.(check bool) "dead after free" false n.Node.live;
  let s = Pool.stats p in
  Alcotest.(check int) "created" 1 s.Mpool.created;
  Alcotest.(check int) "allocs" 1 s.Mpool.allocs;
  Alcotest.(check int) "frees" 1 s.Mpool.frees

let test_reuse () =
  let p = Pool.create ~local_cache:0 () in
  let n1 = Pool.alloc p in
  Pool.free p n1;
  let n2 = Pool.alloc p in
  Alcotest.(check bool) "freed node is recycled" true (n1 == n2);
  Alcotest.(check int) "only one node ever created" 1 (Pool.stats p).created

let test_distinct_when_live () =
  let p = Pool.create ~local_cache:0 () in
  let n1 = Pool.alloc p in
  let n2 = Pool.alloc p in
  Alcotest.(check bool) "live nodes distinct" true (n1 != n2);
  Alcotest.(check int) "two created" 2 (Pool.stats p).created

let test_indices_dense_and_stable () =
  let p = Pool.create ~local_cache:0 () in
  let nodes = List.init 100 (fun _ -> Pool.alloc p) in
  let indices = List.map Node.index nodes |> List.sort compare in
  Alcotest.(check (list int)) "dense indices" (List.init 100 Fun.id) indices;
  List.iter
    (fun n ->
      Alcotest.(check bool)
        "lookup returns the node" true
        (Pool.lookup p (Node.index n) == n))
    nodes

let test_lookup_out_of_range () =
  let p = Pool.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Mpool.lookup: index out of range") (fun () ->
      ignore (Pool.lookup p (-1)));
  Alcotest.check_raises "past end"
    (Invalid_argument "Mpool.lookup: index out of range") (fun () ->
      ignore (Pool.lookup p 0))

let test_local_cache_spills () =
  let p = Pool.create ~local_cache:4 () in
  let nodes = List.init 32 (fun _ -> Pool.alloc p) in
  List.iter (Pool.free p) nodes;
  Alcotest.(check int) "all frees counted" 32 (Pool.stats p).frees;
  (* Everything must be allocatable again without fresh creation. *)
  let again = List.init 32 (fun _ -> Pool.alloc p) in
  Alcotest.(check int) "no new nodes" 32 (Pool.stats p).created;
  ignore again

let test_live_counter () =
  let p = Pool.create ~local_cache:0 () in
  let a = Pool.alloc p in
  let b = Pool.alloc p in
  Alcotest.(check int) "live 2" 2 (Pool.live p);
  Pool.free p a;
  Alcotest.(check int) "live 1" 1 (Pool.live p);
  Pool.free p b;
  Alcotest.(check int) "live 0" 0 (Pool.live p)

let test_concurrent_churn () =
  (* Domains hammer alloc/free; afterwards the books must balance and
     no node may be live. *)
  let p = Pool.create ~local_cache:8 () in
  let iters = 2_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let r = Prims.Rng.create ~seed:d in
            let held = ref [] in
            for _ = 1 to iters do
              if Prims.Rng.below r 2 = 0 then held := Pool.alloc p :: !held
              else
                match !held with
                | [] -> held := [ Pool.alloc p ]
                | n :: rest ->
                    Pool.free p n;
                    held := rest
            done;
            List.iter (Pool.free p) !held))
  in
  List.iter Domain.join domains;
  let s = Pool.stats p in
  Alcotest.(check int) "allocs = frees" s.Mpool.allocs s.Mpool.frees;
  Alcotest.(check bool) "created <= allocs" true (s.created <= s.allocs)

let test_splice_accounting () =
  (* Spilling is a whole-cache splice: with local_cache = 4 the fifth
     free pushes all five cached nodes to the shared list in one CAS,
     and the shared-length gauge tracks it exactly at quiescence. *)
  let p = Pool.create ~local_cache:4 () in
  let nodes = List.init 10 (fun _ -> Pool.alloc p) in
  Alcotest.(check int) "nothing shared yet" 0 (Pool.shared_free_length p);
  List.iter (Pool.free p) nodes;
  Alcotest.(check int) "two spills of five" 10 (Pool.shared_free_length p);
  let again = List.init 10 (fun _ -> Pool.alloc p) in
  Alcotest.(check int) "shared drained" 0 (Pool.shared_free_length p);
  Alcotest.(check int) "no fresh creation" 10 (Pool.stats p).created;
  ignore again

let test_exchange_refill () =
  (* The cache-miss path refills by exchanging the whole shared list:
     one domain manufactures 20 nodes and spills them all, then a
     second domain's single allocation must grab [1 + local_cache]
     nodes in one go (no fresh creation) and splice the surplus back.
     Domains run sequentially so the accounting is exact. *)
  let p = Pool.create ~local_cache:4 () in
  Domain.join
    (Domain.spawn (fun () ->
         let nodes = List.init 20 (fun _ -> Pool.alloc p) in
         List.iter (Pool.free p) nodes));
  Alcotest.(check int) "producer spilled everything" 20
    (Pool.shared_free_length p);
  Domain.join
    (Domain.spawn (fun () ->
         ignore (Pool.alloc p);
         Alcotest.(check int)
           "one miss took 1 + local_cache nodes" 15
           (Pool.shared_free_length p);
         (* The next [local_cache] allocations are pure cache hits. *)
         for _ = 1 to 4 do
           ignore (Pool.alloc p)
         done;
         Alcotest.(check int)
           "cache hits leave the shared list alone" 15
           (Pool.shared_free_length p);
         ignore (Pool.alloc p);
         Alcotest.(check int)
           "next miss refills again" 10
           (Pool.shared_free_length p)));
  Alcotest.(check int) "no fresh creation on the refill path" 20
    (Pool.stats p).created

let test_refill_under_contention () =
  (* Two domains alternating miss-heavy allocation against a shared
     pile: refills (exchange) race refills and splices (CAS); the
     books must balance at quiescence and nothing may be lost or
     duplicated. *)
  let p = Pool.create ~local_cache:2 () in
  Domain.join
    (Domain.spawn (fun () ->
         let nodes = List.init 64 (fun _ -> Pool.alloc p) in
         List.iter (Pool.free p) nodes));
  let worker seed =
    Domain.spawn (fun () ->
        let r = Prims.Rng.create ~seed in
        let held = ref [] in
        for _ = 1 to 2_000 do
          if Prims.Rng.below r 2 = 0 then held := Pool.alloc p :: !held
          else
            match !held with
            | [] -> held := [ Pool.alloc p ]
            | n :: rest ->
                Pool.free p n;
                held := rest
        done;
        List.iter (Pool.free p) !held)
  in
  let d1 = worker 1 and d2 = worker 2 in
  Domain.join d1;
  Domain.join d2;
  let s = Pool.stats p in
  Alcotest.(check int) "allocs = frees" s.Mpool.allocs s.Mpool.frees;
  Alcotest.(check int) "live 0" 0 (Pool.live p)

let test_lookup_vs_fresh_frontier () =
  (* Regression for the reserve-then-publish race in [fresh]: the
     index is reserved (fetch-and-add on [next_index]) strictly before
     the node is installed in its registry cell, so a reader chasing
     the frontier can pass the range check and hit a cell whose store
     is still in flight.  The seed code either raised from the missing
     chunk or returned a placeholder node with the wrong index;
     post-fix [lookup] must wait on the specific cell and return the
     node whose index is exactly the one asked for.  The only
     tolerated failure is the range check itself (index not reserved
     yet). *)
  let p = Pool.create ~local_cache:0 () in
  let stop = Atomic.make false in
  let bad = Atomic.make None in
  let producers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              ignore (Pool.alloc p)
            done))
  in
  let consumer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        (try
           while not (Atomic.get stop) do
             match Pool.lookup p !i with
             | n ->
                 if Node.index n <> !i then begin
                   Atomic.set bad
                     (Some
                        (Printf.sprintf "lookup %d returned node %d" !i
                           (Node.index n)));
                   Atomic.set stop true
                 end
                 else incr i
             | exception Invalid_argument msg
               when msg = "Mpool.lookup: index out of range" ->
                 (* Frontier index not reserved yet — the only
                    tolerated failure; anything else falls through to
                    the outer handler and fails the test. *)
                 Domain.cpu_relax ()
           done
         with e ->
           Atomic.set bad (Some (Printexc.to_string e));
           Atomic.set stop true);
        !i)
  in
  Unix.sleepf 0.3;
  Atomic.set stop true;
  let chased = Domain.join consumer in
  List.iter Domain.join producers;
  (match Atomic.get bad with
  | Some msg -> Alcotest.fail ("frontier race: " ^ msg)
  | None -> ());
  Alcotest.(check bool) "consumer chased a non-empty frontier" true
    (chased > 0)

let test_inject_failures () =
  let p = Pool.create ~local_cache:0 () in
  Pool.inject_failures p ~n:2;
  Alcotest.(check int) "budget armed" 2 (Pool.injected_failures_pending p);
  (match Pool.alloc p with
  | _ -> Alcotest.fail "first alloc should have failed"
  | exception Mpool.Injected_oom -> ());
  (match Pool.alloc p with
  | _ -> Alcotest.fail "second alloc should have failed"
  | exception Mpool.Injected_oom -> ());
  Alcotest.(check int) "budget drained" 0 (Pool.injected_failures_pending p);
  let n = Pool.alloc p in
  Alcotest.(check bool) "third alloc succeeds" true n.Node.live;
  (* Failed allocations must not leak into the books: live stays exact
     and only the successful alloc is counted. *)
  let s = Pool.stats p in
  Alcotest.(check int) "failed allocs not counted" 1 s.Mpool.allocs;
  Alcotest.(check int) "live exact" 1 (Pool.live p);
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Mpool.inject_failures: n < 0") (fun () ->
      Pool.inject_failures p ~n:(-1))

(* ------------------------------------------------------------------ *)
(* Node reuse under Leaky vs the Hdr generation check.

   Leaky never frees, so a retired node stays reachable forever; if
   storage is recycled anyway (the unsafe-reclamation adversary), a
   reader still holding the old pointer commits a use-after-free.  The
   checked build must catch exactly that: the shared free funnel marks
   the header freed, and a stale dereference trips [Lifecycle] before
   the pool hands the node out again. *)

module Blk = struct
  type t = { hdr : Smr.Hdr.t; index : int }

  let create ~index = { hdr = Smr.Hdr.create (); index }
  let index b = b.index
  let on_alloc b = Smr.Hdr.set_live b.hdr
  let on_free _ = ()
end

module Bpool = Mpool.Make (Blk)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_leaky_reuse_trips_generation_check () =
  let t = Smr.Leaky.create Smr.Config.default in
  let pool = Bpool.create ~local_cache:0 () in
  Smr.Leaky.enter t ~tid:0;
  let a = Bpool.alloc pool in
  a.Blk.hdr.Smr.Hdr.free_hook <- (fun () -> Bpool.free pool a);
  Smr.Leaky.alloc_hook t ~tid:0 a.Blk.hdr;
  Smr.Leaky.retire t ~tid:0 a.Blk.hdr;
  Smr.Leaky.leave t ~tid:0;
  Alcotest.(check int)
    "leaky never reclaims" 1
    (Smr.Stats.unreclaimed (Smr.Leaky.stats t));
  (* Force the reclamation Leaky refuses to do, through the shared
     funnel every scheme frees with: header freed, storage recycled. *)
  Smr.Tracker.free_block (Smr.Leaky.stats t) ~tid:0 a.Blk.hdr;
  (* A reader still holding the stale pointer dereferences it. *)
  (match Smr.Hdr.check_not_freed "stale deref" a.Blk.hdr with
  | () -> Alcotest.fail "stale dereference after free went undetected"
  | exception Smr.Hdr.Lifecycle (msg, h) ->
      Alcotest.(check bool)
        "violation names the dereference context" true
        (contains msg "stale deref");
      Alcotest.(check bool) "violation carries the header" true
        (h == a.Blk.hdr));
  (* Freeing the same block again is its own violation. *)
  (match Smr.Tracker.free_block (Smr.Leaky.stats t) ~tid:0 a.Blk.hdr with
  | () -> Alcotest.fail "double free went undetected"
  | exception Smr.Hdr.Lifecycle (msg, _) ->
      Alcotest.(check bool) "double free named" true (contains msg "double-free"));
  (* The free hook really recycled the storage: the next allocation is
     the same node, relabelled live — which is why the stale pointer
     above was dangerous and the trip mandatory. *)
  let b = Bpool.alloc pool in
  Alcotest.(check bool) "retired node physically reused" true (a == b);
  Alcotest.(check bool)
    "reused header reads as live again" false
    (Smr.Hdr.is_freed b.Blk.hdr)

let prop_sequential_model =
  (* Random alloc/free sequences against a simple model: the pool's
     live count always equals (allocs - frees) of the model, and every
     alloc returns a node that is not currently held. *)
  QCheck.Test.make ~name:"pool matches alloc/free model" ~count:100
    QCheck.(list bool)
    (fun script ->
      let p = Pool.create ~local_cache:0 () in
      let held = ref [] in
      let model_live = ref 0 in
      List.iter
        (fun is_alloc ->
          if is_alloc then begin
            let n = Pool.alloc p in
            if List.memq n !held then failwith "pool handed out a held node";
            held := n :: !held;
            incr model_live
          end
          else
            match !held with
            | [] -> ()
            | n :: rest ->
                Pool.free p n;
                held := rest;
                decr model_live)
        script;
      Pool.live p = !model_live)

let suites =
  [
    ( "mpool",
      [
        Alcotest.test_case "alloc/free roundtrip" `Quick
          test_alloc_free_roundtrip;
        Alcotest.test_case "freed nodes are reused" `Quick test_reuse;
        Alcotest.test_case "live nodes distinct" `Quick
          test_distinct_when_live;
        Alcotest.test_case "indices dense+stable, lookup" `Quick
          test_indices_dense_and_stable;
        Alcotest.test_case "lookup out of range" `Quick
          test_lookup_out_of_range;
        Alcotest.test_case "local cache spills" `Quick test_local_cache_spills;
        Alcotest.test_case "live counter" `Quick test_live_counter;
        Alcotest.test_case "concurrent churn" `Slow test_concurrent_churn;
        Alcotest.test_case "splice accounting" `Quick test_splice_accounting;
        Alcotest.test_case "exchange refill, two domains" `Quick
          test_exchange_refill;
        Alcotest.test_case "refill under contention" `Slow
          test_refill_under_contention;
        Alcotest.test_case "lookup vs fresh frontier" `Slow
          test_lookup_vs_fresh_frontier;
        Alcotest.test_case "injected alloc failures" `Quick
          test_inject_failures;
        Alcotest.test_case "leaky reuse trips the generation check" `Quick
          test_leaky_reuse_trips_generation_check;
        qcheck prop_sequential_model;
      ] );
  ]
