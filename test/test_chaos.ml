(* Tests for the lib/chaos fault-injection subsystem: plan generation,
   crash/recover on the service, reaper determinism, and the engine +
   oracle end to end.  Everything runs at container scale — small
   detect windows, few steps — because virtual time makes the
   contracts size-independent. *)

let small_cfg ?(shards = 2) ?(detect = 24) ?(bound = 96) ~scheme () =
  {
    (Chaos.Engine.default_cfg
       ~scheme:(Workload.Registry.find_scheme scheme)
       ~structure:(Workload.Registry.find_structure "hashmap"))
    with
    Chaos.Engine.shards;
    clients = 3;
    key_range = 64;
    detect;
    bound;
  }

let crash_plan =
  {
    Chaos.Fault.seed = 11;
    steps = 100;
    events =
      [
        { Chaos.Fault.at = 8; shard = 0; kind = Chaos.Fault.Crash };
        { Chaos.Fault.at = 20; shard = 1; kind = Chaos.Fault.Oom 2 };
        { Chaos.Fault.at = 60; shard = 1; kind = Chaos.Fault.Stall 12 };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Fault plans *)

let test_generate_deterministic () =
  let gen () =
    Chaos.Fault.generate ~seed:5 ~steps:400 ~nshards:4
      ~classes:[ Chaos.Fault.Stalls; Chaos.Fault.Crashes; Chaos.Fault.Ooms ]
      ~events:6 ~crash_window:80
  in
  let p1 = gen () and p2 = gen () in
  Alcotest.(check bool) "same seed, same plan" true (p1 = p2);
  Alcotest.(check bool)
    "plan is non-trivial" true
    (List.length p1.Chaos.Fault.events >= 3);
  let p3 =
    Chaos.Fault.generate ~seed:6 ~steps:400 ~nshards:4
      ~classes:[ Chaos.Fault.Stalls; Chaos.Fault.Crashes; Chaos.Fault.Ooms ]
      ~events:6 ~crash_window:80
  in
  Alcotest.(check bool) "different seed, different plan" true (p1 <> p3)

let test_generate_no_overlap () =
  (* Per shard, fault windows must not overlap: the engine barriers on
     a healthy shard before every injection. *)
  let p =
    Chaos.Fault.generate ~seed:123 ~steps:1000 ~nshards:3
      ~classes:[ Chaos.Fault.Stalls; Chaos.Fault.Crashes ]
      ~events:12 ~crash_window:60
  in
  let busy = Array.make 3 0 in
  List.iter
    (fun (e : Chaos.Fault.event) ->
      Alcotest.(check bool)
        (Printf.sprintf "event at %d on busy shard %d" e.Chaos.Fault.at
           e.Chaos.Fault.shard)
        true
        (busy.(e.Chaos.Fault.shard) <= e.Chaos.Fault.at);
      match e.Chaos.Fault.kind with
      | Chaos.Fault.Stall d ->
          busy.(e.Chaos.Fault.shard) <- e.Chaos.Fault.at + d
      | Chaos.Fault.Crash -> busy.(e.Chaos.Fault.shard) <- e.Chaos.Fault.at + 60
      | _ -> ())
    p.Chaos.Fault.events

(* ------------------------------------------------------------------ *)
(* Shard crash / recover primitive *)

let test_crash_recover_roundtrip () =
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyalines")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 2;
        clients = 2;
        mailbox_capacity = 4;
      }
  in
  Fun.protect
    ~finally:(fun () -> svc.Service.Shard.stop ())
    (fun () ->
      Alcotest.(check bool)
        "alive before crash" true
        (svc.Service.Shard.consumer_alive 0);
      svc.Service.Shard.crash ~shard:0;
      Alcotest.(check bool)
        "dead after crash" false
        (svc.Service.Shard.consumer_alive 0);
      let hb = svc.Service.Shard.heartbeat 0 in
      Unix.sleepf 0.02;
      Alcotest.(check int)
        "heartbeat frozen" hb
        (svc.Service.Shard.heartbeat 0);
      (* Double crash is a caller error. *)
      (match svc.Service.Shard.crash ~shard:0 with
      | () -> Alcotest.fail "double crash accepted"
      | exception Invalid_argument _ -> ());
      (* The other shard keeps serving while the dead one queues. *)
      let k1 = ref 0 in
      while svc.Service.Shard.shard_of_key !k1 <> 1 do
        incr k1
      done;
      (match
         Service.Shard.call svc ~tid:0
           (Service.Codec.Put { key = !k1; value = 9 })
       with
      | Service.Codec.Created -> ()
      | r ->
          Alcotest.failf "surviving shard answered %s"
            (Service.Codec.reply_to_string r));
      svc.Service.Shard.recover ~shard:0;
      Alcotest.(check bool)
        "alive after recover" true
        (svc.Service.Shard.consumer_alive 0);
      (match svc.Service.Shard.recover ~shard:0 with
      | () -> Alcotest.fail "recover of a live shard accepted"
      | exception Invalid_argument _ -> ());
      let k0 = ref 0 in
      while svc.Service.Shard.shard_of_key !k0 <> 0 do
        incr k0
      done;
      match Service.Shard.call svc ~tid:0 (Service.Codec.Get !k0) with
      | Service.Codec.Not_found | Service.Codec.Value _ -> ()
      | r ->
          Alcotest.failf "recovered shard answered %s"
            (Service.Codec.reply_to_string r))

(* A crash with queued requests: recovery must drain the backlog and
   answer every deferred request exactly once. *)
let test_recovery_drains_backlog () =
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline1s")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 1;
        clients = 2;
        mailbox_capacity = 8;
      }
  in
  Fun.protect
    ~finally:(fun () -> svc.Service.Shard.stop ())
    (fun () ->
      svc.Service.Shard.crash ~shard:0;
      let answered = Atomic.make 0 in
      let sheds = Atomic.make 0 in
      for k = 0 to 11 do
        svc.Service.Shard.submit ~tid:0
          (Service.Codec.Put { key = k; value = k })
          (fun r ->
            match r with
            | Service.Codec.Shed -> Atomic.incr sheds
            | _ -> Atomic.incr answered)
      done;
      Alcotest.(check int)
        "mailbox bound sheds the overflow" 4 (Atomic.get sheds);
      Alcotest.(check int) "nothing drained yet" 0 (Atomic.get answered);
      svc.Service.Shard.recover ~shard:0;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Atomic.get answered < 8 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.005
      done;
      Alcotest.(check int)
        "all accepted requests answered after recovery" 8
        (Atomic.get answered))

(* ------------------------------------------------------------------ *)
(* Engine end to end *)

let test_engine_deterministic_replay () =
  let run () =
    Chaos.Engine.run (small_cfg ~scheme:"hyalines" ()) crash_plan
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check (list string))
    "identical fault traces" r1.Chaos.Engine.r_trace r2.Chaos.Engine.r_trace;
  Alcotest.(check bool)
    "identical deterministic counters" true
    ((r1.Chaos.Engine.r_prompt, r1.Chaos.Engine.r_deferred,
      r1.Chaos.Engine.r_shed, r1.Chaos.Engine.r_oom_injected,
      r1.Chaos.Engine.r_crashes, r1.Chaos.Engine.r_recoveries,
      r1.Chaos.Engine.r_recovery_steps)
    = (r2.Chaos.Engine.r_prompt, r2.Chaos.Engine.r_deferred,
       r2.Chaos.Engine.r_shed, r2.Chaos.Engine.r_oom_injected,
       r2.Chaos.Engine.r_crashes, r2.Chaos.Engine.r_recoveries,
       r2.Chaos.Engine.r_recovery_steps))

let test_engine_reaper_latency_exact () =
  let r = Chaos.Engine.run (small_cfg ~detect:16 ~scheme:"hyalines" ()) crash_plan in
  (* Detection counts polls from the confirmed death: latency is
     exactly detect - 1 steps after the crash step's own poll. *)
  Alcotest.(check int) "one crash" 1 r.Chaos.Engine.r_crashes;
  Alcotest.(check int) "one recovery" 1 r.Chaos.Engine.r_recoveries;
  Alcotest.(check int)
    "recovery latency = detect window" 15 r.Chaos.Engine.r_recovery_steps;
  Alcotest.(check bool)
    "oracle passes" true r.Chaos.Engine.r_oracle.Chaos.Oracle.ok

let test_engine_oracle_all_robust_schemes () =
  List.iter
    (fun scheme ->
      let r = Chaos.Engine.run (small_cfg ~scheme ()) crash_plan in
      Alcotest.(check bool)
        (scheme ^ ": oracle passes under crash+oom+stall")
        true r.Chaos.Engine.r_oracle.Chaos.Oracle.ok;
      Alcotest.(check int)
        (scheme ^ ": no generation trips")
        0 r.Chaos.Engine.r_oracle.Chaos.Oracle.gen_trips)
    [ "hyalines"; "hyaline1s"; "hp"; "he"; "ibr" ]

let test_engine_backend_parity () =
  (* Figure rows must not depend on the head backend: the packed and
     dwcas backends implement the same algorithm, and everything the
     plan determines must come out identical — every fault counter and
     the trace byte for byte.  The unreclaimed-gauge samples
     ([r_series], [r_peak_ctl]) are NOT plan-determined: they race the
     consumer domains' drain progress, so across runs only their
     invariants hold, not their values. *)
  let r1 = Chaos.Engine.run (small_cfg ~scheme:"Hyaline-S" ()) crash_plan in
  let r2 =
    Chaos.Engine.run (small_cfg ~scheme:"Hyaline-S(packed)" ()) crash_plan
  in
  let open Chaos.Engine in
  Alcotest.(check string) "dwcas scheme name" "Hyaline-S" r1.r_scheme;
  Alcotest.(check string) "packed scheme name" "Hyaline-S(packed)" r2.r_scheme;
  Alcotest.(check int) "steps" r1.r_steps r2.r_steps;
  Alcotest.(check int) "prompt" r1.r_prompt r2.r_prompt;
  Alcotest.(check int) "deferred" r1.r_deferred r2.r_deferred;
  Alcotest.(check int) "shed" r1.r_shed r2.r_shed;
  Alcotest.(check int) "oom injected" r1.r_oom_injected r2.r_oom_injected;
  Alcotest.(check int) "net faults" r1.r_net_faults r2.r_net_faults;
  Alcotest.(check int) "churns" r1.r_churns r2.r_churns;
  Alcotest.(check int) "crashes" r1.r_crashes r2.r_crashes;
  Alcotest.(check int) "recoveries" r1.r_recoveries r2.r_recoveries;
  Alcotest.(check int) "recovery steps" r1.r_recovery_steps r2.r_recovery_steps;
  Alcotest.(check (option bool)) "dwcas mem bounded" (Some true) r1.r_mem_bounded;
  Alcotest.(check (option bool)) "packed mem bounded" (Some true) r2.r_mem_bounded;
  Alcotest.(check bool) "dwcas peak ctl sampled" true (r1.r_peak_ctl >= 0);
  Alcotest.(check bool) "packed peak ctl sampled" true (r2.r_peak_ctl >= 0);
  Alcotest.(check int)
    "series lengths match" (Array.length r1.r_series) (Array.length r2.r_series);
  Alcotest.(check (list string)) "trace byte-identical" r1.r_trace r2.r_trace;
  Alcotest.(check bool) "dwcas oracle ok" true r1.r_oracle.Chaos.Oracle.ok;
  Alcotest.(check bool) "packed oracle ok" true r2.r_oracle.Chaos.Oracle.ok

let test_engine_oom_only_mutates_nothing () =
  let plan =
    {
      Chaos.Fault.seed = 3;
      steps = 40;
      events = [ { Chaos.Fault.at = 5; shard = 0; kind = Chaos.Fault.Oom 3 } ];
    }
  in
  let r = Chaos.Engine.run (small_cfg ~scheme:"hyaline" ()) plan in
  Alcotest.(check int) "three injected failures" 3 r.Chaos.Engine.r_oom_injected;
  Alcotest.(check bool)
    "oracle validates the surviving state" true
    r.Chaos.Engine.r_oracle.Chaos.Oracle.ok;
  Alcotest.(check int) "no sheds in a calm run" 0 r.Chaos.Engine.r_shed

(* ------------------------------------------------------------------ *)
(* Oracle unit behaviour *)

let test_oracle_flags_divergence () =
  let open Service.Codec in
  let ok =
    Chaos.Oracle.run
      ~ops:
        [
          (Put { key = 1; value = 5 }, Created);
          (Get 1, Value 5);
          (Put { key = 2; value = 7 }, Error "Mpool.Injected_oom");
          (Get 2, Not_found);
          (Del 9, Shed);
        ]
      ~final:[ (1, Value 5); (2, Not_found) ] ~ctl_unreclaimed:0
      ~data_unreclaimed:[ 0 ]
  in
  Alcotest.(check bool) "consistent history passes" true ok.Chaos.Oracle.ok;
  let bad =
    Chaos.Oracle.run
      ~ops:[ (Put { key = 1; value = 5 }, Created); (Get 1, Value 6) ]
      ~final:[] ~ctl_unreclaimed:0 ~data_unreclaimed:[]
  in
  Alcotest.(check bool) "stale read flagged" false bad.Chaos.Oracle.ok;
  let trip =
    Chaos.Oracle.run
      ~ops:[ (Get 1, Error "Smr.Hdr.Lifecycle(\"use-after-free: read\", _)") ]
      ~final:[] ~ctl_unreclaimed:0 ~data_unreclaimed:[]
  in
  Alcotest.(check int) "generation trip counted" 1 trip.Chaos.Oracle.gen_trips;
  Alcotest.(check bool) "generation trip fails the run" false
    trip.Chaos.Oracle.ok;
  let leak =
    Chaos.Oracle.run ~ops:[] ~final:[] ~ctl_unreclaimed:4 ~data_unreclaimed:[]
  in
  Alcotest.(check bool) "post-stop backlog fails the run" false
    leak.Chaos.Oracle.ok

let suites =
  [
    ( "chaos.fault",
      [
        Alcotest.test_case "seeded plans are deterministic" `Quick
          test_generate_deterministic;
        Alcotest.test_case "per-shard fault windows never overlap" `Quick
          test_generate_no_overlap;
      ] );
    ( "chaos.shard",
      [
        Alcotest.test_case "crash/recover roundtrip" `Quick
          test_crash_recover_roundtrip;
        Alcotest.test_case "recovery drains the backlog" `Quick
          test_recovery_drains_backlog;
      ] );
    ( "chaos.engine",
      [
        Alcotest.test_case "replaying a plan is byte-identical" `Slow
          test_engine_deterministic_replay;
        Alcotest.test_case "reaper detection latency is exact" `Quick
          test_engine_reaper_latency_exact;
        Alcotest.test_case "oracle passes for every robust scheme" `Slow
          test_engine_oracle_all_robust_schemes;
        Alcotest.test_case "injected oom mutates nothing" `Quick
          test_engine_oom_only_mutates_nothing;
        Alcotest.test_case "packed backend result parity" `Slow
          test_engine_backend_parity;
      ] );
    ( "chaos.oracle",
      [
        Alcotest.test_case "divergence, trips and leaks flagged" `Quick
          test_oracle_flags_divergence;
      ] );
  ]
