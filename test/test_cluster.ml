(* lib/cluster: consistent-hash placement, the cluster-control
   opcodes, and live slot migration over real sockets. *)

module Codec = Service.Codec
module Ring = Cluster.Ring
module Node = Cluster.Node
module Router = Cluster.Router
module Migrate = Cluster.Migrate

(* ------------------------------------------------------------------ *)
(* Ring placement *)

let test_ring_deterministic () =
  let a = Ring.assign ~seed:42 ~nslots:64 ~nodes:[ 0; 1; 2 ] in
  let b = Ring.assign ~seed:42 ~nslots:64 ~nodes:[ 0; 1; 2 ] in
  Alcotest.(check (array int)) "same seed, same table" a b;
  let c = Ring.assign ~seed:43 ~nslots:64 ~nodes:[ 0; 1; 2 ] in
  Alcotest.(check bool) "different seed moves slots" true (Ring.moved a c > 0);
  Alcotest.check_raises "empty nodes rejected"
    (Invalid_argument "Ring.assign: no nodes") (fun () ->
      ignore (Ring.assign ~seed:1 ~nslots:8 ~nodes:[]));
  Alcotest.check_raises "duplicate nodes rejected"
    (Invalid_argument "Ring.assign: duplicate node id") (fun () ->
      ignore (Ring.assign ~seed:1 ~nslots:8 ~nodes:[ 3; 3 ]))

let test_ring_balance () =
  let nodes = [ 0; 1; 2; 3 ] in
  let owners = Ring.assign ~seed:7 ~nslots:256 ~nodes in
  List.iter
    (fun (node, slots) ->
      if slots < 256 / 4 / 3 then
        Alcotest.failf "node %d owns only %d/256 slots" node slots)
    (Ring.spread owners ~nodes);
  (* Every key lands in range, and the slot map is stable. *)
  for k = 0 to 999 do
    let s = Ring.slot_of_key ~nslots:256 k in
    Alcotest.(check bool) "slot in range" true (s >= 0 && s < 256);
    Alcotest.(check int) "slot_of_key is pure" s (Ring.slot_of_key ~nslots:256 k)
  done

let test_ring_minimal_movement () =
  let before = Ring.assign ~seed:9 ~nslots:128 ~nodes:[ 0; 1 ] in
  let after = Ring.assign ~seed:9 ~nslots:128 ~nodes:[ 0; 1; 2 ] in
  (* Consistent hashing: a slot either moved TO the new node or kept
     its owner — nothing reshuffles between the old nodes. *)
  Array.iteri
    (fun s owner ->
      if owner <> 2 then
        Alcotest.(check int)
          (Printf.sprintf "slot %d undisturbed" s)
          before.(s) owner)
    after;
  let gained =
    Array.fold_left (fun a o -> if o = 2 then a + 1 else a) 0 after
  in
  Alcotest.(check bool) "the join takes a real share" true
    (gained > 0 && gained < 128)

(* ------------------------------------------------------------------ *)
(* Cluster opcodes round-trip the wire *)

let roundtrip_request req =
  let b = Buffer.create 64 in
  Codec.encode_request b req;
  let payload = Bytes.sub (Buffer.to_bytes b) 4 (Buffer.length b - 4) in
  Codec.request_of_payload payload

let roundtrip_reply r =
  let b = Buffer.create 64 in
  Codec.encode_reply b r;
  let payload = Bytes.sub (Buffer.to_bytes b) 4 (Buffer.length b - 4) in
  Codec.reply_of_payload payload

let test_codec_cluster_ops () =
  List.iter
    (fun req ->
      Alcotest.(check string)
        (Codec.request_to_string req)
        (Codec.request_to_string req)
        (Codec.request_to_string (roundtrip_request req)))
    [
      Codec.Cl_info;
      Codec.Cl_grant { slot = 7; version = 12; token = 0 };
      Codec.Cl_grant { slot = 7; version = 12; token = (3 lsl 32) lor 9 };
      Codec.Cl_freeze { slot = 63; target = 2 };
      Codec.Cl_release { slot = 0 };
      Codec.Cl_snap { slot = 5; shard = 1; cursor = 400; max = 200; base = 0 };
      Codec.Cl_snap
        { slot = 5; shard = 1; cursor = 0; max = 200; base = (1 lsl 32) lor 4 };
      Codec.Cl_base { slot = 12 };
      Codec.Cl_purge { slot = 12 };
      Codec.Cl_apply
        {
          records =
            [ (1, Codec.Set { key = 4; value = 40 }); (2, Codec.Unset 9) ];
        };
    ];
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Codec.reply_to_string r) (Codec.reply_to_string r)
        (Codec.reply_to_string (roundtrip_reply r)))
    [
      Codec.Moved { slot = 3; node = 1 };
      Codec.Cl_state { version = 4; node = 0; owners = [| 0; 1; 0; 2 |] };
      Codec.Cl_snap_batch
        {
          seq = 17;
          next = -1;
          kvs = [ (1, 10); (2, 20); (3, 30) ];
          tombs = [];
          delta = false;
        };
      Codec.Cl_snap_batch
        { seq = 0; next = 200; kvs = []; tombs = [ 4; 9 ]; delta = true };
      Codec.Cl_token { token = (7 lsl 32) lor 123 };
      Codec.Cl_token { token = 0 };
      Codec.Cl_ok;
    ]

(* ------------------------------------------------------------------ *)
(* Node-level ownership and the persisted cutover record *)

let hashmap = Workload.Registry.find_structure "hashmap"
let hyaline = Workload.Registry.find_scheme "hyaline"

let mk_primary ~store =
  let cfg =
    { Service.Shard.default_config with Service.Shard.shards = 2; clients = 6 }
  in
  fst (Replica.Primary.create ~structure:hashmap ~scheme:hyaline cfg ~store ())

let test_node_ownership_check () =
  let store, _ = Replica.Store.Mem.create () in
  let p = mk_primary ~store in
  Fun.protect
    ~finally:(fun () -> Replica.Primary.stop p)
    (fun () ->
      let nslots = 8 in
      (* Node 1 owns odd slots; evens belong to node 0. *)
      let owners = Array.init nslots (fun s -> s land 1) in
      let node = Node.create ~node_id:1 ~nslots ~owners ~apply_tid:5 p in
      let seen_owned = ref false and seen_moved = ref false in
      for k = 0 to 99 do
        let slot = Ring.slot_of_key ~nslots k in
        match Node.handle node (Codec.Get k) with
        | None ->
            seen_owned := true;
            Alcotest.(check int) "fall-through only when owned" 1 owners.(slot)
        | Some (Codec.Moved { slot = s; node = n }) ->
            seen_moved := true;
            Alcotest.(check int) "redirect names the key's slot" slot s;
            Alcotest.(check int) "redirect names the owner" owners.(slot) n
        | Some r ->
            Alcotest.failf "unexpected reply %s" (Codec.reply_to_string r)
      done;
      Alcotest.(check bool) "both outcomes exercised" true
        (!seen_owned && !seen_moved);
      (* Control ops are served regardless of ownership. *)
      match Node.handle node Codec.Cl_info with
      | Some (Codec.Cl_state { node = 1; owners = o; _ }) ->
          Alcotest.(check (array int)) "table served" owners o
      | _ -> Alcotest.fail "cl_info not served")

let test_node_cutover_survives_reboot () =
  let store, _ = Replica.Store.Mem.create () in
  let nslots = 8 in
  let owners = Array.make nslots 0 in
  let p = mk_primary ~store in
  let node = Node.create ~node_id:1 ~nslots ~owners ~apply_tid:5 p in
  (* The grant persists before its ack — this is the cutover record. *)
  (match Node.handle node (Codec.Cl_grant { slot = 5; version = 3; token = 0 }) with
  | Some Codec.Cl_ok -> ()
  | _ -> Alcotest.fail "grant not acked");
  Alcotest.(check bool) "granted slot owned" true (Node.owns_slot node 5);
  Replica.Primary.stop p;
  (* Reboot from the same store with the {e default} table: the
     persisted one must win, or a crashed node forgets a migration it
     acknowledged. *)
  let p2 = mk_primary ~store in
  Fun.protect
    ~finally:(fun () -> Replica.Primary.stop p2)
    (fun () ->
      let node2 =
        Node.create ~node_id:1 ~nslots ~owners:(Array.make nslots 0)
          ~apply_tid:5 p2
      in
      Alcotest.(check bool) "cutover survives reboot" true
        (Node.owns_slot node2 5);
      Alcotest.(check int) "version survives reboot" 3 (Node.version node2))

let test_admit_filter_gates_execution () =
  (* The execution-time admission filter installed by [Node.create]:
     a request reaching a shard consumer for a slot the node does not
     own answers [Moved] without mutating — even submitted straight
     to the service, past every transport-side check (the parked-
     write cutover hole).  The node's reserved tid is exempt:
     migration ingest legitimately writes slots the node does not own
     yet. *)
  let store, _ = Replica.Store.Mem.create () in
  let p = mk_primary ~store in
  Fun.protect
    ~finally:(fun () -> Replica.Primary.stop p)
    (fun () ->
      let nslots = 8 in
      (* Node 1 owns odd slots; evens belong to node 0. *)
      let owners = Array.init nslots (fun s -> s land 1) in
      let _node = Node.create ~node_id:1 ~nslots ~owners ~apply_tid:5 p in
      let svc = p.Replica.Primary.svc in
      let find_key pred =
        let rec go k =
          if pred (Ring.slot_of_key ~nslots k) then k else go (k + 1)
        in
        go 0
      in
      let foreign = find_key (fun s -> s land 1 = 0) in
      let mine = find_key (fun s -> s land 1 = 1) in
      (match
         Service.Shard.call svc ~tid:0 (Codec.Put { key = foreign; value = 7 })
       with
      | Codec.Moved { node = n; _ } ->
          Alcotest.(check int) "redirect names the owner" 0 n
      | r ->
          Alcotest.failf "foreign-slot write not gated: %s"
            (Codec.reply_to_string r));
      (match Service.Shard.call svc ~tid:0 (Codec.Get foreign) with
      | Codec.Moved _ -> ()
      | r ->
          Alcotest.failf "foreign-slot read not gated: %s"
            (Codec.reply_to_string r));
      (match
         Service.Shard.call svc ~tid:5 (Codec.Put { key = foreign; value = 7 })
       with
      | Codec.Created -> ()
      | r -> Alcotest.failf "ingest tid gated: %s" (Codec.reply_to_string r));
      match Service.Shard.call svc ~tid:0 (Codec.Put { key = mine; value = 9 })
      with
      | Codec.Created -> ()
      | r ->
          Alcotest.failf "owned-slot write blocked: %s"
            (Codec.reply_to_string r))

let test_freeze_quiesce_timeout () =
  (* Freeze must not ack while a shard consumer cannot certify the
     writes already inside the service: a parked consumer holds the
     quiesce barrier, the freeze times out, rolls the flip back, and
     answers [Error]; after unparking the same freeze succeeds. *)
  let store, _ = Replica.Store.Mem.create () in
  let p = mk_primary ~store in
  Fun.protect
    ~finally:(fun () -> Replica.Primary.stop p)
    (fun () ->
      let nslots = 8 in
      let owners = Array.make nslots 1 in
      let node =
        Node.create ~node_id:1 ~nslots ~quiesce_timeout:0.2 ~owners
          ~apply_tid:5 p
      in
      let svc = p.Replica.Primary.svc in
      svc.Service.Shard.set_stalled ~shard:0 true;
      while not (svc.Service.Shard.is_parked 0) do
        Domain.cpu_relax ()
      done;
      (match Node.handle node (Codec.Cl_freeze { slot = 3; target = 0 }) with
      | Some (Codec.Error _) -> ()
      | Some r ->
          Alcotest.failf "freeze under a stalled shard answered %s"
            (Codec.reply_to_string r)
      | None -> Alcotest.fail "freeze fell through");
      Alcotest.(check bool)
        "failed freeze rolled the flip back" true
        (Node.owns_slot node 3);
      svc.Service.Shard.set_stalled ~shard:0 false;
      (match Node.handle node (Codec.Cl_freeze { slot = 3; target = 0 }) with
      | Some Codec.Cl_ok -> ()
      | _ -> Alcotest.fail "freeze after unstall not acked");
      Alcotest.(check bool)
        "acked freeze redirected the slot" false
        (Node.owns_slot node 3))

(* ------------------------------------------------------------------ *)
(* Two real daemons on the evloop backend: routed load, a live slot
   migration under that load, zero lost acks, oracle identity, and a
   post-migration reboot that keeps the new table. *)

let tmp_sock tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "kvc-%s-%d.sock" tag (Unix.getpid ()))

let test_migration_under_load () =
  let nslots = Ring.default_nslots in
  let keyrange = 200 in
  let stores = Array.init 2 (fun _ -> fst (Replica.Store.Mem.create ())) in
  let prims = Array.map (fun store -> mk_primary ~store) stores in
  let owners0 = Array.make nslots 0 in
  let nodes =
    Array.mapi
      (fun id p -> Node.create ~node_id:id ~nslots ~owners:owners0 ~apply_tid:5 p)
      prims
  in
  let paths = Array.init 2 (fun id -> tmp_sock (string_of_int id)) in
  let servers =
    Array.init 2 (fun id ->
        Service.Conn.serve_unix prims.(id).Replica.Primary.svc ~path:paths.(id)
          ~ext:(Node.handle nodes.(id))
          ~ext_defer:Node.deferrable ~backend:(`Evloop `Auto) ())
  in
  let eps = Array.init 2 (fun id -> Router.endpoint ~id ~path:paths.(id)) in
  let router = Router.create ~nslots ~endpoints:(Array.to_list eps) () in
  Fun.protect
    ~finally:(fun () ->
      Router.close router;
      Array.iter Service.Conn.shutdown servers;
      Array.iter Replica.Primary.stop prims)
    (fun () ->
      (* Load driver: seeded sequential ops through the router — a
         total order, so the acked history replays as an oracle. *)
      let ops = ref [] in
      let stop = Atomic.make false in
      let errors = Atomic.make 0 in
      let n_acked = Atomic.make 0 in
      let driver =
        Domain.spawn (fun () ->
            let rng = Prims.Rng.create ~seed:1234 in
            let acked = ref [] in
            while not (Atomic.get stop) do
              let key = Prims.Rng.below rng keyrange in
              let req =
                match Prims.Rng.below rng 10 with
                | 0 | 1 | 2 | 3 ->
                    Codec.Put { key; value = Prims.Rng.below rng 1000 }
                | 4 | 5 -> Codec.Del key
                | 6 ->
                    Codec.Cas
                      {
                        key;
                        expected = Prims.Rng.below rng 1000;
                        desired = Prims.Rng.below rng 1000;
                      }
                | _ -> Codec.Get key
              in
              (match Router.call router req with
              | Codec.Error _ | Codec.Shed | Codec.Moved _ ->
                  Atomic.incr errors
              | reply ->
                  acked := (req, reply) :: !acked;
                  Atomic.incr n_acked)
            done;
            !acked)
      in
      (* Let load build, then migrate a slot that the driver's key
         range actually hits, while writes keep flowing. *)
      Unix.sleepf 0.1;
      let slot = Ring.slot_of_key ~nslots 0 in
      let stats =
        match
          Migrate.run ~src:eps.(0) ~dst:eps.(1) ~slot ~nshards:2 ~nslots
            ~router ()
        with
        | Ok s -> s
        | Error e -> Alcotest.failf "migration failed: %s" e
      in
      (* Keep driving post-migration until the history is substantial
         — op-count-based, not wall-clock, so a loaded machine (or a
         cutover fast enough to shrink the migration window) cannot
         starve the assertion below. *)
      let deadline = Unix.gettimeofday () +. 30.0 in
      while Atomic.get n_acked <= 300 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      Atomic.set stop true;
      ops := List.rev (Domain.join driver);
      Alcotest.(check int) "no routed call was lost" 0 (Atomic.get errors);
      Alcotest.(check bool) "driver did real work" true (List.length !ops > 300);
      Alcotest.(check bool) "migration shipped catch-up traffic" true
        (stats.Migrate.mg_catchup_rounds >= 1);
      (* Ownership flipped: the source redirects, the target serves. *)
      (match Router.endpoint_call eps.(0) (Codec.Get 0) with
      | Codec.Moved { slot = s; node = 1 } ->
          Alcotest.(check int) "redirect names the migrated slot" slot s
      | r -> Alcotest.failf "source still serves: %s" (Codec.reply_to_string r));
      Alcotest.(check bool) "target owns the slot" true
        (Node.owns_slot nodes.(1) slot);
      (* Oracle identity: replay the acked history sequentially and
         compare every key's value as served by the cluster now. *)
      let expected = Chaos.Oracle.replay_state ~ops:!ops in
      let final =
        List.filter_map
          (fun k ->
            match Router.call router (Codec.Get k) with
            | Codec.Value v -> Some (k, v)
            | Codec.Not_found -> None
            | r -> Alcotest.failf "get %d: %s" k (Codec.reply_to_string r))
          (List.init keyrange Fun.id)
      in
      Alcotest.(check (list (pair int int)))
        "cluster state = oracle replay of acked history" expected final;
      (* Migrate the slot BACK.  The first cutover left node 0 holding
         the handoff token node 1 was granted under, and node 1 has
         tracked its writes in the per-slot dirty set since — so this
         bootstrap must ship a delta chain, not a full copy, and land
         on the same oracle state. *)
      let rec2 = Obs.Recorder.create ~nthreads:1 () in
      let stats2 =
        match
          Migrate.run ~src:eps.(1) ~dst:eps.(0) ~slot ~nshards:2 ~nslots
            ~router ~recorder:rec2 ()
        with
        | Ok s -> s
        | Error e -> Alcotest.failf "back-migration failed: %s" e
      in
      Alcotest.(check bool) "back-migration shipped a delta" true
        stats2.Migrate.mg_delta;
      Alcotest.(check (option int))
        "delta gauge recorded" (Some 1)
        (Obs.Recorder.gauge rec2 ~name:"cluster/migrate/delta");
      Alcotest.(check bool) "shipped pages accounted" true
        (Obs.Recorder.gauge rec2 ~name:"cluster/migrate/snap_pages" <> None);
      Alcotest.(check bool) "slot back home" true (Node.owns_slot nodes.(0) slot);
      Alcotest.(check bool) "old target redirects" false
        (Node.owns_slot nodes.(1) slot);
      let final2 =
        List.filter_map
          (fun k ->
            match Router.call router (Codec.Get k) with
            | Codec.Value v -> Some (k, v)
            | Codec.Not_found -> None
            | r ->
                Alcotest.failf "get %d after back-migration: %s" k
                  (Codec.reply_to_string r))
          (List.init keyrange Fun.id)
      in
      Alcotest.(check (list (pair int int)))
        "delta-shipped state = oracle replay" expected final2;
      (* Reboot the first migration's target: its persisted table must
         remember both cutovers — the slot it was granted and then
         gave back. *)
      Service.Conn.shutdown servers.(1);
      Replica.Primary.stop prims.(1);
      let p1' = mk_primary ~store:stores.(1) in
      Fun.protect
        ~finally:(fun () -> Replica.Primary.stop p1')
        (fun () ->
          let n1' =
            Node.create ~node_id:1 ~nslots ~owners:(Array.make nslots 0)
              ~apply_tid:5 p1'
          in
          Alcotest.(check bool) "the back-cutover survives reboot" false
            (Node.owns_slot n1' slot);
          (* The data it acked is still recoverable from its own WAL:
             the stale copy keeps the slot's bindings as of its
             freeze. *)
          let recovered =
            List.concat
              (List.init 2 (fun shard -> Replica.Primary.sweep p1' ~shard))
          in
          let expected_slot =
            List.filter (fun (k, _) -> Ring.slot_of_key ~nslots k = slot) expected
          in
          List.iter
            (fun (k, v) ->
              match List.assoc_opt k recovered with
              | Some v' when v' = v -> ()
              | Some v' -> Alcotest.failf "key %d: %d <> %d" k v' v
              | None -> Alcotest.failf "key %d missing after reboot" k)
            expected_slot))

let suites =
  [
    ( "cluster.ring",
      [
        Alcotest.test_case "seeded determinism" `Quick test_ring_deterministic;
        Alcotest.test_case "virtual-node balance" `Quick test_ring_balance;
        Alcotest.test_case "minimal movement on join" `Quick
          test_ring_minimal_movement;
      ] );
    ( "cluster.codec",
      [ Alcotest.test_case "control opcodes round-trip" `Quick test_codec_cluster_ops ] );
    ( "cluster.node",
      [
        Alcotest.test_case "ownership check and redirect" `Quick
          test_node_ownership_check;
        Alcotest.test_case "cutover record survives reboot" `Quick
          test_node_cutover_survives_reboot;
        Alcotest.test_case "admission filter gates execution" `Quick
          test_admit_filter_gates_execution;
        Alcotest.test_case "freeze quiesce times out on a stalled shard"
          `Quick test_freeze_quiesce_timeout;
      ] );
    ( "cluster.migrate",
      [
        Alcotest.test_case "live migration under routed load" `Quick
          test_migration_under_load;
      ] );
  ]
