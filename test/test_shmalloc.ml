(* lib/shmalloc: packed-reference round-trips, alloc/retire/free-list
   reuse, cross-process reservation handoff (stalled-reader bound vs
   the Epoch baseline), the confirmed-death sweep, and the seeded
   torn-reference fuzz — a recycle between Val_ref receipt and
   copy-out must always be detected by the generation stamp, never
   decoded as a wrong value. *)

module Arena = Shmalloc.Arena

let tmp_name =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shmalloc-%d-%d-%s.arena" (Unix.getpid ()) !counter tag)

let with_arena ?(slots = 4) ?(policy = Arena.Handoff) ?payloads ?blocks tag f =
  let path = tmp_name tag in
  let a = Arena.create ~path ~slots ~policy ?payloads ?blocks () in
  Fun.protect
    ~finally:(fun () ->
      Arena.mark_closed a;
      Arena.detach a;
      Arena.unlink a)
    (fun () -> f a)

let rand_string st n = String.init n (fun _ -> Char.chr (Random.State.int st 256))

(* ------------------------------------------------------------------ *)
(* Packed references. *)

let test_ref_roundtrip () =
  let st = Random.State.make [| 0xA11; 0x0C |] in
  for _ = 1 to 1000 do
    let gen = Random.State.int st (1 lsl 22) in
    let cls = Random.State.int st 8 in
    let len = Random.State.int st (Arena.Ref.max_len + 1) in
    let idx = Random.State.int st (Arena.Ref.max_idx + 1) in
    let r = Arena.Ref.pack ~gen ~cls ~len ~idx in
    Alcotest.(check int) "gen" gen (Arena.Ref.gen r);
    Alcotest.(check int) "cls" cls (Arena.Ref.cls r);
    Alcotest.(check int) "len" len (Arena.Ref.len r);
    Alcotest.(check int) "idx" idx (Arena.Ref.idx r)
  done

(* ------------------------------------------------------------------ *)
(* Lifecycle. *)

let test_lifecycle () =
  let path = tmp_name "life" in
  let a = Arena.create ~path ~slots:2 () in
  Alcotest.(check bool) "owner open" true (Arena.is_open a);
  let r = Arena.attach ~path ~expect_gen:(Arena.generation a) () in
  Alcotest.(check int) "same gen" (Arena.generation a) (Arena.generation r);
  Alcotest.(check int) "slots visible" 2 (Arena.nslots r);
  (match Arena.attach ~path ~expect_gen:(Arena.generation a + 1) () with
  | exception Arena.Bad_arena _ -> ()
  | _ -> Alcotest.fail "generation mismatch must be rejected");
  Arena.detach r;
  Arena.mark_closed a;
  (match Arena.attach ~path () with
  | exception Arena.Bad_arena _ -> ()
  | _ -> Alcotest.fail "closed arena must be rejected");
  Arena.detach a;
  Arena.unlink a;
  match Arena.attach ~path () with
  | exception Arena.Bad_arena _ -> ()
  | _ -> Alcotest.fail "unlinked arena must be rejected"

(* ------------------------------------------------------------------ *)
(* Allocation: class selection, fall-up, exhaustion, reuse. *)

let test_alloc_classes () =
  with_arena "cls" ~payloads:[| 16; 64; 256 |] ~blocks:[| 4; 4; 4 |]
    (fun a ->
      let r16 = Option.get (Arena.alloc_put a (String.make 10 'a')) in
      let r64 = Option.get (Arena.alloc_put a (String.make 40 'b')) in
      let r256 = Option.get (Arena.alloc_put a (String.make 200 'c')) in
      Alcotest.(check int) "small class" 0 (Arena.Ref.cls r16);
      Alcotest.(check int) "mid class" 1 (Arena.Ref.cls r64);
      Alcotest.(check int) "big class" 2 (Arena.Ref.cls r256);
      Alcotest.(check string) "read own small" (String.make 10 'a')
        (Arena.read_own a r16);
      Alcotest.(check string) "read own big" (String.make 200 'c')
        (Arena.read_own a r256);
      (* Exhaust class 0: the next small value falls up a class. *)
      for _ = 1 to 3 do
        ignore (Option.get (Arena.alloc_put a "x"))
      done;
      let up = Option.get (Arena.alloc_put a "y") in
      Alcotest.(check int) "fall-up on exhaustion" 1 (Arena.Ref.cls up);
      Alcotest.(check bool) "oversize refused" true
        (Arena.alloc_put a (String.make 300 'z') = None))

let test_free_reuse () =
  with_arena "reuse" ~slots:2 ~payloads:[| 32 |] ~blocks:[| 16 |] (fun a ->
      let r1 = Option.get (Arena.alloc_put a "hello") in
      let off1 = Arena.off_of_ref a r1 in
      Arena.retire a ~tid:0 r1;
      Arena.flush a;
      (* No active reservation: the batch frees immediately (the
         flush pads it with dummy blocks, so the freed stack holds
         the retired block plus the padding). *)
      Alcotest.(check int) "drained" 0 (Arena.unreclaimed a);
      let rec realloc n =
        if n = 0 then Alcotest.fail "retired block never reused"
        else
          let r2 = Option.get (Arena.alloc_put a "world") in
          if Arena.off_of_ref a r2 = off1 then r2 else realloc (n - 1)
      in
      let r2 = realloc 8 in
      Alcotest.(check bool) "generation moved on" true
        (Arena.Ref.gen r2 <> Arena.Ref.gen r1);
      Alcotest.(check string) "new bytes" "world" (Arena.read_own a r2))

(* ------------------------------------------------------------------ *)
(* Reservation handoff: a stalled reader pins only blocks born before
   its published era (Handoff) while the Epoch baseline pins every
   later retirement. *)

let churn a st n =
  let live = ref [] in
  for _ = 1 to n do
    let r = Option.get (Arena.alloc_put a (rand_string st 24)) in
    live := r :: !live;
    match !live with
    | a' :: b :: rest when Random.State.bool st ->
        ignore a';
        Arena.retire a ~tid:0 b;
        live := List.hd !live :: rest
    | _ -> ()
  done;
  List.iter (fun r -> Arena.retire a ~tid:0 r) !live

let test_handoff_bound () =
  with_arena "bound" ~slots:2 ~payloads:[| 32 |] ~blocks:[| 4096 |] (fun a ->
      let st = Random.State.make [| 7; 7; 7 |] in
      (* Park a reader, then advance the clock so everything retired
         below is born after its era. *)
      Arena.enter a ~slot:0;
      Arena.advance_era a;
      churn a st 600;
      Arena.flush a;
      let pinned = Arena.unreclaimed a in
      Alcotest.(check bool)
        (Printf.sprintf "stalled reader pins bounded garbage (%d)" pinned)
        true
        (pinned <= 3 * (Arena.nslots a + 1));
      Arena.leave a ~slot:0;
      Arena.flush a;
      Alcotest.(check int) "drains after leave" 0 (Arena.unreclaimed a))

let test_handoff_pins_prior () =
  with_arena "prior" ~slots:2 ~payloads:[| 32 |] ~blocks:[| 4096 |] (fun a ->
      (* Blocks born before the reader entered ARE handed to it. *)
      let pre = List.init 8 (fun i -> Option.get (Arena.alloc_put a (string_of_int i))) in
      Arena.enter a ~slot:0;
      List.iter (fun r -> Arena.retire a ~tid:0 r) pre;
      Arena.flush a;
      Alcotest.(check bool) "pre-entry blocks pinned" true
        (Arena.unreclaimed a > 0);
      Arena.leave a ~slot:0;
      Arena.flush a;
      Alcotest.(check int) "released on leave" 0 (Arena.unreclaimed a))

let test_epoch_balloons () =
  with_arena "epoch" ~policy:Arena.Epoch ~slots:2 ~payloads:[| 32 |]
    ~blocks:[| 4096 |] (fun a ->
      let st = Random.State.make [| 9; 9; 9 |] in
      Arena.enter a ~slot:0;
      churn a st 600;
      Arena.flush a;
      let pinned = Arena.unreclaimed a in
      Alcotest.(check bool)
        (Printf.sprintf "EBR balloons under a stalled reader (%d)" pinned)
        true (pinned > 400);
      Arena.leave a ~slot:0;
      (* Freeing needs the clock past the retire eras. *)
      Arena.advance_era a;
      churn a st 40;
      Arena.flush a;
      Alcotest.(check bool) "drains once the reader leaves" true
        (Arena.unreclaimed a < 100))

(* ------------------------------------------------------------------ *)
(* Confirmed-death sweep. *)

(* A pid [kill 0] confirms nonexistent (ESRCH) — found by probing
   rather than forking a child, because earlier suites have already
   spawned domains and OCaml 5 forbids fork after that.  Candidates
   start near the default pid_max so a hit is near-certain on the
   first try. *)
let dead_pid () =
  let rec hunt pid =
    if pid <= 1 then failwith "no free pid found"
    else
      match Unix.kill pid 0 with
      | () -> hunt (pid - 7919)
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> pid
      | exception Unix.Unix_error (_, _, _) -> hunt (pid - 7919)
  in
  hunt 4194000

let test_sweep_dead () =
  with_arena "sweep" ~slots:2 ~payloads:[| 32 |] ~blocks:[| 4096 |] (fun a ->
      let pre = List.init 8 (fun i -> Option.get (Arena.alloc_put a (string_of_int i))) in
      Arena.enter a ~slot:0;
      Arena.announce a ~slot:0 ~pid:(dead_pid ());
      List.iter (fun r -> Arena.retire a ~tid:0 r) pre;
      Arena.flush a;
      Alcotest.(check bool) "dead reader pins garbage" true
        (Arena.unreclaimed a > 0);
      Alcotest.(check int) "one slot swept" 1 (Arena.sweep_dead a);
      Arena.flush a;
      Alcotest.(check int) "garbage drains after sweep" 0 (Arena.unreclaimed a);
      Alcotest.(check int) "slot word cleared" 0 (Arena.slot_era a ~slot:0);
      Alcotest.(check int) "pid cleared" 0 (Arena.slot_pid a ~slot:0);
      (* A live pid is never swept. *)
      Arena.enter a ~slot:1;
      Arena.announce a ~slot:1 ~pid:(Unix.getpid ());
      Alcotest.(check int) "live slot untouched" 0 (Arena.sweep_dead a);
      Alcotest.(check bool) "live era intact" true (Arena.slot_era a ~slot:1 <> 0);
      Arena.leave a ~slot:1)

(* ------------------------------------------------------------------ *)
(* read_ref frame validation: malformed Val_ref fields can never read
   out of bounds — they come back None and the caller re-copies. *)

let test_read_ref_bounds () =
  with_arena "bounds" ~payloads:[| 32; 64 |] ~blocks:[| 8; 8 |] (fun a ->
      let r = Option.get (Arena.alloc_put a "payload") in
      let cls = Arena.Ref.cls r
      and off = Arena.off_of_ref a r
      and len = Arena.Ref.len r
      and gen = Arena.Ref.gen r in
      Alcotest.(check (option string)) "well-formed frame reads" (Some "payload")
        (Arena.read_ref a ~cls ~off ~len ~gen ());
      let none = Alcotest.(check (option string)) in
      none "bad class" None (Arena.read_ref a ~cls:7 ~off ~len ~gen ());
      none "negative class" None (Arena.read_ref a ~cls:(-1) ~off ~len ~gen ());
      none "misaligned offset" None
        (Arena.read_ref a ~cls ~off:(off + 8) ~len ~gen ());
      none "offset below region" None (Arena.read_ref a ~cls ~off:0 ~len ~gen ());
      none "offset past region" None
        (Arena.read_ref a ~cls ~off:(Arena.size_bytes a) ~len ~gen ());
      none "oversized len" None (Arena.read_ref a ~cls ~off ~len:33 ~gen ());
      none "zero len" None (Arena.read_ref a ~cls ~off ~len:0 ~gen ());
      none "stale generation" None
        (Arena.read_ref a ~cls ~off ~len ~gen:((gen + 1) land 0x3FFFFF) ()))

(* ------------------------------------------------------------------ *)
(* Satellite: seeded torn-reference fuzz.  The daemon recycles the
   block between the client's Val_ref receipt and its copy-out (and
   sometimes mid-copy, through the gate).  Every outcome must be
   either the exact minted bytes or a detected stale read — never a
   decode of the recycled value. *)

let test_torn_ref_fuzz () =
  with_arena "fuzz" ~slots:2 ~payloads:[| 16; 128; 1024 |]
    ~blocks:[| 64; 64; 64 |] (fun a ->
      let oks = ref 0 and stales = ref 0 in
      for seed = 0 to 999 do
        let st = Random.State.make [| 0xF0; seed |] in
        let len = 1 + Random.State.int st 1000 in
        let value = rand_string st len in
        let r = Option.get (Arena.alloc_put a value) in
        let cls = Arena.Ref.cls r
        and off = Arena.off_of_ref a r
        and gen = Arena.Ref.gen r in
        let recycled = ref None in
        let recycle () =
          (* Daemon side: retire the referenced block, drain, and
             write a same-sized decoy — the free-list LIFO makes it
             land in the very same block. *)
          Arena.retire a ~tid:0 r;
          Arena.flush a;
          let decoy = rand_string st len in
          (match Arena.alloc_put a decoy with
          | Some r' -> recycled := Some r'
          | None -> Alcotest.fail "decoy alloc failed");
          ()
        in
        let schedule = Random.State.int st 3 in
        if schedule = 1 then recycle ();
        let gate () = if schedule = 2 then recycle () in
        (match Arena.read_ref a ~cls ~off ~len ~gen ~gate () with
        | Some s ->
            incr oks;
            Alcotest.(check string) "materialized bytes are the minted value"
              value s
        | None ->
            incr stales;
            Alcotest.(check bool) "stale only when the daemon recycled" true
              (schedule <> 0);
            (* Retry via the copy path: the authoritative current
               value is the decoy, read owner-side. *)
            let r' = Option.get !recycled in
            Alcotest.(check int) "copy path serves the current value"
              len
              (String.length (Arena.read_own a r')));
        (* Keep the arena tidy for the next seed. *)
        match !recycled with
        | Some r' ->
            Arena.retire a ~tid:0 r';
            Arena.flush a
        | None ->
            Arena.retire a ~tid:0 r;
            Arena.flush a
      done;
      Alcotest.(check bool) "both outcomes exercised" true
        (!oks > 100 && !stales > 100))

let suites =
  [
    ( "shmalloc",
      [
        Alcotest.test_case "ref roundtrip" `Quick test_ref_roundtrip;
        Alcotest.test_case "lifecycle" `Quick test_lifecycle;
        Alcotest.test_case "alloc classes" `Quick test_alloc_classes;
        Alcotest.test_case "free reuse" `Quick test_free_reuse;
        Alcotest.test_case "handoff bound" `Quick test_handoff_bound;
        Alcotest.test_case "handoff pins prior" `Quick test_handoff_pins_prior;
        Alcotest.test_case "epoch balloons" `Quick test_epoch_balloons;
        Alcotest.test_case "sweep dead" `Quick test_sweep_dead;
        Alcotest.test_case "read_ref bounds" `Quick test_read_ref_bounds;
        Alcotest.test_case "torn-ref fuzz (1k seeds)" `Quick test_torn_ref_fuzz;
      ] );
  ]
