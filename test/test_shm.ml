(* lib/shm and the shared-memory transport: ring wrap/torn-write
   property tests, segment lifecycle (generation-stamped attach),
   doorbell wakeups, the end-to-end Shm_conn transport against a live
   service, Conn.Faults parity over rings, and bracket-protected
   zero-copy GETs including the stalled-reader robustness contrast. *)

module Codec = Service.Codec

let tmp_name =
  let counter = ref 0 in
  fun tag ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shmtest-%d-%d-%s" (Unix.getpid ()) !counter tag)

(* ------------------------------------------------------------------ *)
(* Ring over plain (non-mmap'd) bigarrays. *)

let mk_ring ?(cap = 64) () =
  let ctrl =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout 16
  in
  let data =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout cap
  in
  Shm.Ring.init ~ctrl ~head_cell:0 ~tail_cell:8;
  Shm.Ring.create ~ctrl ~head_cell:0 ~tail_cell:8 ~data ~off:0 ~cap

(* A wire-shaped message: 4-byte BE length prefix + payload. *)
let frame_of_payload payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  b

let read_full (src : Codec.source) b pos len =
  let rec go pos remaining got =
    if remaining = 0 then got
    else
      let n = src b pos remaining in
      if n = 0 then got else go (pos + n) (remaining - n) (got + n)
  in
  go pos len 0

let read_msg ring =
  match Shm.Ring.pending ring with
  | `Empty -> None
  | `Torn m -> failwith ("unexpected torn: " ^ m)
  | `Msg plen ->
      let b = Bytes.create (4 + plen) in
      let got = read_full (Shm.Ring.source ring) b 0 (4 + plen) in
      Alcotest.(check int) "message bytes delivered" (4 + plen) got;
      Shm.Ring.finish_msg ring;
      Some (Bytes.sub_string b 4 plen)

let test_ring_roundtrip () =
  let ring = mk_ring ~cap:256 () in
  let send payload =
    let b = frame_of_payload payload in
    Alcotest.(check bool) "send accepted" true
      (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b))
  in
  send "hello";
  send "";
  send "worlds";
  Alcotest.(check (option string)) "first" (Some "hello") (read_msg ring);
  Alcotest.(check (option string)) "second" (Some "") (read_msg ring);
  Alcotest.(check (option string)) "third" (Some "worlds") (read_msg ring);
  Alcotest.(check (option string)) "drained" None (read_msg ring)

(* The wrap property: random payload sizes through a tiny ring hit
   every split point — inside the length prefix, inside the payload,
   inside the stamp — because cumulative message lengths sweep all
   residues mod capacity. *)
let test_ring_wrap_property () =
  let cap = 64 in
  let ring = mk_ring ~cap () in
  let rng = Prims.Rng.create ~seed:4242 in
  let mk i len =
    String.init len (fun j -> Char.chr ((i + (7 * j)) land 0xff))
  in
  for i = 0 to 4999 do
    let len = Prims.Rng.below rng (Shm.Ring.max_payload ring + 1) in
    let payload = mk i len in
    let b = frame_of_payload payload in
    Alcotest.(check bool)
      (Printf.sprintf "send %d (len %d) into empty ring" i len)
      true
      (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b));
    match read_msg ring with
    | Some got ->
        if got <> payload then
          Alcotest.failf "message %d (len %d) corrupted across wrap" i len
    | None -> Alcotest.failf "message %d vanished" i
  done;
  Alcotest.(check bool) "ring never broke" false (Shm.Ring.is_broken ring)

(* Several queued messages at arbitrary wrap phases. *)
let test_ring_queued_wrap () =
  let cap = 128 in
  let ring = mk_ring ~cap () in
  let rng = Prims.Rng.create ~seed:99 in
  let q = Queue.create () in
  for i = 0 to 1999 do
    (* Randomly interleave sends and receives. *)
    if Prims.Rng.below rng 2 = 0 then begin
      let len = Prims.Rng.below rng 24 in
      let payload = String.init len (fun j -> Char.chr ((i + j) land 0xff)) in
      let b = frame_of_payload payload in
      if Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b) then
        Queue.push payload q
    end
    else
      match read_msg ring with
      | Some got ->
          let expect = Queue.pop q in
          if got <> expect then Alcotest.failf "FIFO order broken at %d" i
      | None -> Alcotest.(check int) "empty means none queued" 0 (Queue.length q)
  done;
  (* Drain the rest. *)
  let rec drain () =
    match read_msg ring with
    | Some got ->
        let expect = Queue.pop q in
        Alcotest.(check string) "tail drain" expect got;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all delivered" 0 (Queue.length q)

let test_ring_full_then_drain () =
  let ring = mk_ring ~cap:64 () in
  let b = frame_of_payload (String.make 20 'x') in
  let sent = ref 0 in
  while Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b) do incr sent done;
  Alcotest.(check bool) "filled after a few sends" true (!sent >= 2);
  Alcotest.(check bool) "full ring refuses" false
    (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b));
  (match read_msg ring with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a message");
  Alcotest.(check bool) "space after drain" true
    (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b))

let test_ring_torn_stamp () =
  let ring = mk_ring ~cap:128 () in
  let b = frame_of_payload "healthy" in
  Alcotest.(check bool) "ok send" true
    (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b));
  (match read_msg ring with Some _ -> () | None -> Alcotest.fail "msg");
  Shm.Ring.arm_torn_stamp ring 1;
  Alcotest.(check bool) "damaged send is published" true
    (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b));
  (match Shm.Ring.pending ring with
  | `Torn _ -> ()
  | `Empty | `Msg _ -> Alcotest.fail "torn stamp not reported");
  (* Sticky: the ring stays broken. *)
  (match Shm.Ring.pending ring with
  | `Torn _ -> ()
  | _ -> Alcotest.fail "torn not sticky");
  Alcotest.(check bool) "is_broken" true (Shm.Ring.is_broken ring)

let test_ring_truncated_write () =
  let ring = mk_ring ~cap:128 () in
  let b = frame_of_payload (String.make 40 'q') in
  Shm.Ring.arm_truncate ring 1;
  Alcotest.(check bool) "truncated send is published" true
    (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b));
  match Shm.Ring.pending ring with
  | `Torn _ -> ()
  | `Empty | `Msg _ -> Alcotest.fail "mid-frame truncation not reported"

(* Torn injection at every wrap phase: advance the ring to a random
   position first, then damage — the stamp check must fire no matter
   where the frame (and its stamp) wrapped. *)
let test_ring_torn_at_wrap_phases () =
  let rng = Prims.Rng.create ~seed:7 in
  for trial = 0 to 199 do
    let ring = mk_ring ~cap:64 () in
    (* Advance by a random number of healthy messages. *)
    let advance = Prims.Rng.below rng 40 in
    for i = 0 to advance - 1 do
      let b = frame_of_payload (String.make (Prims.Rng.below rng 16) 'a') in
      if Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b) then
        match read_msg ring with
        | Some _ -> ()
        | None -> Alcotest.failf "trial %d: healthy msg %d lost" trial i
    done;
    let victim = frame_of_payload (String.make (Prims.Rng.below rng 30) 'v') in
    if Prims.Rng.below rng 2 = 0 then Shm.Ring.arm_torn_stamp ring 1
    else Shm.Ring.arm_truncate ring 1;
    if Shm.Ring.try_send ring victim ~pos:0 ~len:(Bytes.length victim) then
      match Shm.Ring.pending ring with
      | `Torn _ -> ()
      | `Empty | `Msg _ ->
          Alcotest.failf "trial %d: damage at this wrap phase not detected"
            trial
  done

let test_ring_rejects_malformed () =
  let ring = mk_ring ~cap:64 () in
  (* Embedded prefix disagreeing with len. *)
  let b = frame_of_payload "abc" in
  Bytes.set_int32_be b 0 9999l;
  Alcotest.check_raises "prefix mismatch"
    (Invalid_argument "Ring.try_send: embedded length prefix disagrees with len")
    (fun () -> ignore (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b)));
  (* A message that can never fit. *)
  let big = frame_of_payload (String.make 70 'z') in
  Alcotest.check_raises "oversized"
    (Invalid_argument "Ring.try_send: message exceeds ring capacity")
    (fun () -> ignore (Shm.Ring.try_send ring big ~pos:0 ~len:(Bytes.length big)))

(* ------------------------------------------------------------------ *)
(* The shared frame decoder over a ring source: real Codec frames,
   including ones that wrap the boundary in two chunks. *)

let test_codec_over_ring () =
  let ring = mk_ring ~cap:64 () in
  let reader = Codec.frame_reader (Shm.Ring.source ring) in
  let buf = Buffer.create 64 in
  let reqs =
    [
      Codec.Get 42;
      Codec.Put { key = 1; value = max_int };
      Codec.Cas { key = 3; expected = -1; desired = min_int };
      Codec.Del 7;
      Codec.Get min_int;
      Codec.Rep_pull { shard = 1; from = 99; max = 10 };
    ]
  in
  (* Push them through one at a time so cumulative lengths move the
     wrap point; 25-byte CAS frames force two-chunk reads in a 64-byte
     ring after a few messages. *)
  List.iteri
    (fun i req ->
      Buffer.clear buf;
      Codec.encode_request buf req;
      let b = Buffer.to_bytes buf in
      Alcotest.(check bool)
        (Printf.sprintf "send %d" i)
        true
        (Shm.Ring.try_send ring b ~pos:0 ~len:(Bytes.length b));
      match Shm.Ring.pending ring with
      | `Msg _ -> (
          match Codec.next_frame reader with
          | Codec.Frame payload ->
              Shm.Ring.finish_msg ring;
              let got = Codec.request_of_payload payload in
              Alcotest.(check string)
                (Printf.sprintf "request %d round-trips the ring" i)
                (Codec.request_to_string req)
                (Codec.request_to_string got)
          | Codec.Eof | Codec.Torn _ -> Alcotest.fail "decoder lost the frame")
      | `Empty | `Torn _ -> Alcotest.fail "complete message not pending")
    reqs

(* ------------------------------------------------------------------ *)
(* Segment lifecycle. *)

let test_seg_create_attach () =
  let path = tmp_name "seg" in
  let seg = Shm.Seg.create ~path ~c2s_cap:1024 ~s2c_cap:2048 () in
  Fun.protect ~finally:(fun () ->
      Shm.Seg.detach seg;
      Shm.Seg.unlink seg)
  @@ fun () ->
  Alcotest.(check bool) "open after create" true (Shm.Seg.is_open seg);
  let att = Shm.Seg.attach ~path ~expect_gen:(Shm.Seg.generation seg) () in
  Alcotest.(check int)
    "same generation" (Shm.Seg.generation seg) (Shm.Seg.generation att);
  (* Bytes written by one mapping are visible through the other. *)
  let tx = Shm.Seg.c2s_ring seg in
  let rx = Shm.Seg.c2s_ring att in
  let b = frame_of_payload "cross-mapping" in
  Alcotest.(check bool) "send via creator mapping" true
    (Shm.Ring.try_send tx b ~pos:0 ~len:(Bytes.length b));
  (match Shm.Ring.pending rx with
  | `Msg n -> Alcotest.(check int) "length visible via attach" 13 n
  | `Empty | `Torn _ -> Alcotest.fail "message not visible across mappings");
  Shm.Seg.detach att

let test_seg_generation_mismatch () =
  let path = tmp_name "seg-gen" in
  let seg = Shm.Seg.create ~path () in
  Fun.protect ~finally:(fun () ->
      Shm.Seg.detach seg;
      Shm.Seg.unlink seg)
  @@ fun () ->
  match Shm.Seg.attach ~path ~expect_gen:(Shm.Seg.generation seg + 1) () with
  | _ -> Alcotest.fail "stale-generation attach must fail"
  | exception Shm.Seg.Bad_segment _ -> ()

let test_seg_closed_attach () =
  let path = tmp_name "seg-closed" in
  let seg = Shm.Seg.create ~path () in
  Fun.protect ~finally:(fun () ->
      Shm.Seg.detach seg;
      Shm.Seg.unlink seg)
  @@ fun () ->
  Shm.Seg.mark_closed seg;
  match Shm.Seg.attach ~path () with
  | _ -> Alcotest.fail "attach to a closed segment must fail"
  | exception Shm.Seg.Bad_segment _ -> ()

let test_seg_garbage_attach () =
  let path = tmp_name "seg-garbage" in
  let oc = open_out_bin path in
  output_string oc (String.make 8192 '\x5a');
  close_out oc;
  Fun.protect ~finally:(fun () -> Shm.Seg.unlink_path path)
  @@ fun () ->
  match Shm.Seg.attach ~path () with
  | _ -> Alcotest.fail "attach to garbage must fail"
  | exception Shm.Seg.Bad_segment _ -> ()

let test_seg_unlink_sweeps_files () =
  let path = tmp_name "seg-sweep" in
  let seg = Shm.Seg.create ~path () in
  Alcotest.(check bool) "seg file exists" true (Sys.file_exists path);
  Alcotest.(check bool) "cli bell exists" true
    (Sys.file_exists (Shm.Seg.cli_bell seg));
  Alcotest.(check bool) "srv bell exists" true
    (Sys.file_exists (Shm.Seg.srv_bell seg));
  Shm.Seg.mark_closed seg;
  Shm.Seg.detach seg;
  Shm.Seg.unlink seg;
  Alcotest.(check bool) "seg file gone" false (Sys.file_exists path);
  Alcotest.(check bool) "cli bell gone" false
    (Sys.file_exists (Shm.Seg.cli_bell seg));
  Alcotest.(check bool) "srv bell gone" false
    (Sys.file_exists (Shm.Seg.srv_bell seg))

(* ------------------------------------------------------------------ *)
(* Doorbell. *)

let test_doorbell_ready_fast_path () =
  let path = tmp_name "bell-fast" in
  let bell = Shm.Doorbell.create ~path in
  Fun.protect ~finally:(fun () ->
      Shm.Doorbell.close bell;
      Shm.Doorbell.unlink bell)
  @@ fun () ->
  (* ready immediately: wait must return without ever announcing. *)
  let announced = ref false in
  Shm.Doorbell.wait bell
    ~announce:(fun _ -> announced := true)
    ~ready:(fun () -> true);
  Alcotest.(check bool) "no flag traffic on the fast path" false !announced

let test_doorbell_wakes_sleeper () =
  let path = tmp_name "bell-wake" in
  let bell = Shm.Doorbell.create ~path in
  Fun.protect ~finally:(fun () ->
      Shm.Doorbell.close bell;
      Shm.Doorbell.unlink bell)
  @@ fun () ->
  let flag = Atomic.make false in
  let ready = Atomic.make false in
  let waiter =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 5.0 in
        while (not (Atomic.get ready)) && Unix.gettimeofday () < deadline do
          Shm.Doorbell.wait bell ~spin:10
            ~announce:(fun b -> Atomic.set flag b)
            ~ready:(fun () -> Atomic.get ready)
        done;
        Atomic.get ready)
  in
  let ringer = Shm.Doorbell.attach ~path in
  (* Publish, then ring (unconditionally here; the flag race is the
     waiter's select timeout's problem, bounded at 50ms). *)
  Unix.sleepf 0.02;
  Atomic.set ready true;
  Shm.Doorbell.ring ringer;
  let woke = Domain.join waiter in
  Shm.Doorbell.close ringer;
  Alcotest.(check bool) "sleeper observed readiness" true woke

(* ------------------------------------------------------------------ *)
(* End-to-end transport against a live service. *)

let make_svc ?(shards = 2) ?(clients = 2) ?(zc_readers = 0)
    ?(scheme = "hyaline") () =
  Service.Shard.create
    ~structure:(Workload.Registry.find_structure "hashmap")
    ~scheme:(Workload.Registry.find_scheme scheme)
    {
      Service.Shard.default_config with
      Service.Shard.shards;
      clients;
      mailbox_capacity = 64;
      zc_readers;
    }

let with_server ?faults ?(clients = 2) f =
  let svc = make_svc ~clients () in
  let path = tmp_name "kvd-listen" in
  let srv = Service.Shm_conn.serve svc ~path ?faults () in
  Fun.protect ~finally:(fun () ->
      Service.Shm_conn.shutdown srv;
      svc.Service.Shard.stop ())
  @@ fun () -> f ~path ~svc ~srv

let test_shm_conn_opcodes () =
  with_server @@ fun ~path ~svc:_ ~srv:_ ->
  let c = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () -> Service.Shm_conn.close c)
  @@ fun () ->
  let check name expected req =
    Alcotest.(check string)
      name
      (Codec.reply_to_string expected)
      (Codec.reply_to_string (Service.Shm_conn.call c req))
  in
  check "get missing" Codec.Not_found (Codec.Get 1);
  check "put" Codec.Created (Codec.Put { key = 1; value = 10 });
  check "get" (Codec.Value 10) (Codec.Get 1);
  check "put update" Codec.Updated (Codec.Put { key = 1; value = 11 });
  check "cas ok" Codec.Cas_ok (Codec.Cas { key = 1; expected = 11; desired = 12 });
  check "cas fail" Codec.Cas_fail
    (Codec.Cas { key = 1; expected = 11; desired = 13 });
  check "del" Codec.Deleted (Codec.Del 1);
  check "get after del" Codec.Not_found (Codec.Get 1)

let test_shm_conn_many_requests () =
  with_server @@ fun ~path ~svc:_ ~srv:_ ->
  let c = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () -> Service.Shm_conn.close c)
  @@ fun () ->
  for i = 0 to 499 do
    match Service.Shm_conn.call c (Codec.Put { key = i; value = i * 3 }) with
    | Codec.Created -> ()
    | r -> Alcotest.failf "put %d: %s" i (Codec.reply_to_string r)
  done;
  for i = 0 to 499 do
    match Service.Shm_conn.call c (Codec.Get i) with
    | Codec.Value v when v = i * 3 -> ()
    | r -> Alcotest.failf "get %d: %s" i (Codec.reply_to_string r)
  done

let test_shm_conn_two_clients () =
  with_server @@ fun ~path ~svc:_ ~srv:_ ->
  let c1 = Service.Shm_conn.connect ~path in
  let c2 = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () ->
      Service.Shm_conn.close c1;
      Service.Shm_conn.close c2)
  @@ fun () ->
  (match Service.Shm_conn.call c1 (Codec.Put { key = 5; value = 55 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "c1 put: %s" (Codec.reply_to_string r));
  match Service.Shm_conn.call c2 (Codec.Get 5) with
  | Codec.Value 55 -> ()
  | r -> Alcotest.failf "c2 get: %s" (Codec.reply_to_string r)

let test_shm_conn_shed_when_full () =
  with_server ~clients:1 @@ fun ~path ~svc:_ ~srv:_ ->
  let c1 = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () -> Service.Shm_conn.close c1)
  @@ fun () ->
  (* Claim the only tid with a live call. *)
  (match Service.Shm_conn.call c1 (Codec.Put { key = 1; value = 1 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "c1 put: %s" (Codec.reply_to_string r));
  let c2 = Service.Shm_conn.connect ~path in
  (* The daemon sheds: one Shed reply, then the segment closes. *)
  match Service.Shm_conn.call c2 (Codec.Get 1) with
  | Codec.Shed -> ()
  | r -> Alcotest.failf "expected Shed, got %s" (Codec.reply_to_string r)
  | exception Service.Conn.Closed -> ()

let test_shm_conn_connect_without_daemon () =
  let path = tmp_name "no-daemon" in
  match Service.Shm_conn.connect ~path with
  | _ -> Alcotest.fail "connect with no daemon must fail"
  | exception Service.Shm_conn.Unavailable _ -> ()

let test_shm_conn_shutdown_wakes_client () =
  let svc = make_svc () in
  let path = tmp_name "kvd-shutdown" in
  let srv = Service.Shm_conn.serve svc ~path () in
  let c = Service.Shm_conn.connect ~path in
  (match Service.Shm_conn.call c (Codec.Put { key = 9; value = 9 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "put: %s" (Codec.reply_to_string r));
  Service.Shm_conn.shutdown srv;
  (* The segment is stamped closed and unlinked: the next call fails
     cleanly rather than hanging. *)
  (match Service.Shm_conn.call c (Codec.Get 9) with
  | _ -> Alcotest.fail "call after shutdown must raise"
  | exception Service.Conn.Closed -> ());
  Alcotest.(check bool) "listen FIFO unlinked" false (Sys.file_exists path);
  Service.Shm_conn.close c;
  svc.Service.Shard.stop ()

let test_shm_conn_faults_parity () =
  let faults = Service.Conn.Faults.create () in
  with_server ~faults @@ fun ~path ~svc:_ ~srv:_ ->
  let c = Service.Shm_conn.connect ~path in
  (match Service.Shm_conn.call c (Codec.Put { key = 3; value = 3 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "put: %s" (Codec.reply_to_string r));
  Service.Conn.Faults.arm_truncate_reply faults 1;
  (* The damaged reply must surface as a clean connection death — the
     reader reports the torn commit stamp, never decodes garbage. *)
  (match Service.Shm_conn.call c (Codec.Get 3) with
  | r -> Alcotest.failf "expected Closed, got %s" (Codec.reply_to_string r)
  | exception Service.Conn.Closed -> ());
  Service.Shm_conn.close c;
  (* A fresh connection still works: only the damaged conn died. *)
  let c2 = Service.Shm_conn.connect ~path in
  (match Service.Shm_conn.call c2 (Codec.Get 3) with
  | Codec.Value 3 -> ()
  | r -> Alcotest.failf "fresh conn: %s" (Codec.reply_to_string r));
  Service.Shm_conn.close c2

(* The multiplexer survives a hostile ring writer.  A correctly
   stamped frame with length in (Codec.max_frame, ring max_payload] is
   craftable by any same-uid writer — the commit stamp is a pure
   function of seq/len — and must cost that connection, never the
   daemon (Codec.Malformed used to escape pump_in and kill the
   multiplexer domain). *)
let test_shm_conn_oversize_frame_kills_conn_not_daemon () =
  with_server @@ fun ~path ~svc:_ ~srv:_ ->
  let seg_path = Printf.sprintf "%s.seg.%d.999" path (Unix.getpid ()) in
  let seg = Shm.Seg.create ~path:seg_path () in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_NONBLOCK ] 0 in
  let line = Printf.sprintf "%s %d\n" seg_path (Shm.Seg.generation seg) in
  ignore (Unix.write_substring fd line 0 (String.length line));
  Unix.close fd;
  let tx = Shm.Seg.c2s_ring seg in
  let plen = 2 * Codec.max_frame in
  let frame = Bytes.create (4 + plen) in
  Bytes.set_int32_be frame 0 (Int32.of_int plen);
  Alcotest.(check bool)
    "oversized frame enters the ring" true
    (Shm.Ring.try_send tx frame ~pos:0 ~len:(4 + plen));
  let srv_bell = Shm.Doorbell.attach ~path:(Shm.Seg.srv_bell seg) in
  Shm.Doorbell.ring srv_bell;
  (* The daemon stamps the connection closed rather than dying. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Shm.Seg.is_open seg && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "hostile connection killed" false (Shm.Seg.is_open seg);
  Shm.Doorbell.close srv_bell;
  Shm.Seg.detach seg;
  (* The multiplexer survived: a legitimate client still works. *)
  let c = Service.Shm_conn.connect ~path in
  (match Service.Shm_conn.call c (Codec.Put { key = 1; value = 1 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "daemon after oversize frame: %s" (Codec.reply_to_string r));
  Service.Shm_conn.close c

(* Announce lines naming paths outside "<listen>.seg.*" are ignored:
   the FIFO is same-uid writable, and the daemon must not mmap or
   unlink an arbitrary path on a writer's say-so. *)
let test_shm_conn_rejects_foreign_announce () =
  with_server @@ fun ~path ~svc:_ ~srv:_ ->
  let victim = tmp_name "victim" in
  let oc = open_out victim in
  output_string oc "precious";
  close_out oc;
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_NONBLOCK ] 0 in
  List.iter
    (fun line ->
      ignore (Unix.write_substring fd line 0 (String.length line)))
    [
      victim ^ " not-a-number\n";
      victim ^ " 1\n";
      (* Prefix-satisfying but slash-smuggling relative escape. *)
      path ^ ".seg./../" ^ Filename.basename victim ^ " 1\n";
    ];
  Unix.close fd;
  (* A later connect's announce rides the same FIFO, so a completed
     call proves the foreign lines were already consumed. *)
  let c = Service.Shm_conn.connect ~path in
  (match Service.Shm_conn.call c (Codec.Put { key = 2; value = 2 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "daemon after foreign announce: %s" (Codec.reply_to_string r));
  Service.Shm_conn.close c;
  Alcotest.(check bool) "victim file untouched" true (Sys.file_exists victim);
  Sys.remove victim

let test_shm_conn_stale_listen_claim () =
  (* A dead daemon's listen FIFO and segments are swept by the next
     serve, not deadlocked on. *)
  let path = tmp_name "stale-listen" in
  Unix.mkfifo path 0o600;
  let stale_seg = path ^ ".seg.99999.0" in
  let seg = Shm.Seg.create ~path:stale_seg () in
  Shm.Seg.detach seg;
  let svc = make_svc () in
  let srv = Service.Shm_conn.serve svc ~path () in
  Fun.protect ~finally:(fun () ->
      Service.Shm_conn.shutdown srv;
      svc.Service.Shard.stop ())
  @@ fun () ->
  Alcotest.(check bool) "stale segment swept" false (Sys.file_exists stale_seg);
  let c = Service.Shm_conn.connect ~path in
  (match Service.Shm_conn.call c (Codec.Put { key = 1; value = 2 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "put on reclaimed path: %s" (Codec.reply_to_string r));
  Service.Shm_conn.close c

(* ------------------------------------------------------------------ *)
(* Zero-copy bracket-protected GETs. *)

let test_zerocopy_roundtrip () =
  let svc = make_svc ~zc_readers:2 () in
  Fun.protect ~finally:(fun () -> svc.Service.Shard.stop ())
  @@ fun () ->
  match Service.Conn.Zerocopy.connect svc ~tid:0 with
  | None -> Alcotest.fail "slot available"
  | Some c ->
      Fun.protect ~finally:(fun () -> Service.Conn.Zerocopy.close c)
      @@ fun () ->
      (* Writes take the ordinary routed path. *)
      (match Service.Conn.Zerocopy.call c (Codec.Put { key = 7; value = 70 })
       with
      | Codec.Created -> ()
      | r -> Alcotest.failf "put: %s" (Codec.reply_to_string r));
      (* Reads are direct, inside the bracket. *)
      Service.Conn.Zerocopy.with_bracket c (fun () ->
          Alcotest.(check (option int))
            "zc get" (Some 70)
            (Service.Conn.Zerocopy.get c 7);
          Alcotest.(check (option int))
            "zc miss" None
            (Service.Conn.Zerocopy.get c 8));
      (* Reads outside the bracket are a contract violation. *)
      (match Service.Conn.Zerocopy.get c 7 with
      | _ -> Alcotest.fail "get outside bracket must raise"
      | exception Invalid_argument _ -> ())

let test_zerocopy_slot_exhaustion () =
  let svc = make_svc ~zc_readers:1 () in
  Fun.protect ~finally:(fun () -> svc.Service.Shard.stop ())
  @@ fun () ->
  match Service.Conn.Zerocopy.connect svc ~tid:0 with
  | None -> Alcotest.fail "first lease"
  | Some c1 ->
      (match Service.Conn.Zerocopy.connect svc ~tid:1 with
      | Some _ -> Alcotest.fail "second lease must fail"
      | None -> ());
      Service.Conn.Zerocopy.close c1;
      (* Released slots are transparently reusable. *)
      (match Service.Conn.Zerocopy.connect svc ~tid:1 with
      | Some c2 -> Service.Conn.Zerocopy.close c2
      | None -> Alcotest.fail "slot not recycled")

(* The robustness contrast, in miniature: a zero-copy reader stalls
   inside its bracket while the consumer churns retirements.  A
   robust scheme (hyaline1s) keeps the unreclaimed backlog bounded;
   EBR's grows with the churn.  (The full adversary with real
   thresholds runs in `experiments serve --transport shm --smoke`.) *)
let stalled_backlog ~scheme =
  let svc = make_svc ~shards:1 ~zc_readers:1 ~scheme () in
  Fun.protect ~finally:(fun () -> svc.Service.Shard.stop ())
  @@ fun () ->
  match Service.Conn.Zerocopy.connect svc ~tid:0 with
  | None -> Alcotest.fail "lease"
  | Some c ->
      Fun.protect ~finally:(fun () -> Service.Conn.Zerocopy.close c)
      @@ fun () ->
      Service.Conn.Zerocopy.enter c;
      (* The stalled client: bracket open, never reading on. *)
      let lc = Service.Conn.Loopback.connect svc ~tid:1 in
      for i = 0 to 2999 do
        (* Overwrites + deletes: every one retires a node. *)
        ignore (Service.Conn.Loopback.call lc (Codec.Put { key = i land 15; value = i }));
        ignore (Service.Conn.Loopback.call lc (Codec.Del (i land 15)))
      done;
      let unreclaimed =
        List.fold_left
          (fun acc st -> acc + Smr.Stats.unreclaimed st)
          0
          (svc.Service.Shard.data_stats ())
      in
      Service.Conn.Zerocopy.leave c;
      unreclaimed

let test_zerocopy_stalled_reader_robustness () =
  let robust = stalled_backlog ~scheme:"hyaline1s" in
  let ebr = stalled_backlog ~scheme:"ebr" in
  (* 6000 retirements behind a stalled bracket: EBR pins the lot,
     a robust scheme a small multiple of the batch bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "robust bounded (hyaline1s=%d vs ebr=%d)" robust ebr)
    true
    (robust * 4 < ebr)

(* ------------------------------------------------------------------ *)
(* Cross-process zero-copy: arena-backed store, by-reference GETs. *)

let with_arena_server ?(policy = Shmalloc.Arena.Handoff) ?(clients = 2) f =
  let path = tmp_name "kvd-arena" in
  let arena =
    Shmalloc.Arena.create ~path:(path ^ ".arena") ~slots:clients ~policy
      ~tids:2 ()
  in
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure "hashmap")
      ~scheme:(Workload.Registry.find_scheme "hyaline")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 2;
        clients;
        mailbox_capacity = 64;
        zc_readers = 1;
        arena = Some arena;
      }
  in
  let srv = Service.Shm_conn.serve svc ~path () in
  Fun.protect ~finally:(fun () ->
      Service.Shm_conn.shutdown srv;
      svc.Service.Shard.stop ();
      Shmalloc.Arena.mark_closed arena;
      Shmalloc.Arena.detach arena;
      Shmalloc.Arena.unlink arena)
  @@ fun () -> f ~path ~svc ~srv ~arena

let test_zc_remote_roundtrip () =
  with_arena_server @@ fun ~path ~svc:_ ~srv:_ ~arena:_ ->
  let c = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () -> Service.Shm_conn.close c)
  @@ fun () ->
  let check name expected req =
    Alcotest.(check string)
      name
      (Codec.reply_to_string expected)
      (Codec.reply_to_string (Service.Shm_conn.call c req))
  in
  (* Before negotiation every reply is materialized daemon-side —
     byte-identical to the heap-backed transport. *)
  check "pre-zc put" Codec.Created (Codec.Put { key = 1; value = 10 });
  check "pre-zc get" (Codec.Value 10) (Codec.Get 1);
  Alcotest.(check bool) "negotiates" true (Service.Shm_conn.enable_zc c);
  Alcotest.(check bool) "active" true (Service.Shm_conn.zc_active c);
  (* After negotiation GETs travel by reference and the client
     materializes from its own mapping — the replies must not change. *)
  check "zc get int" (Codec.Value 10) (Codec.Get 1);
  check "zc get miss" Codec.Not_found (Codec.Get 2);
  check "zc overwrite" Codec.Updated (Codec.Put { key = 1; value = 11 });
  check "zc get after write" (Codec.Value 11) (Codec.Get 1);
  check "zc cas" Codec.Cas_ok (Codec.Cas { key = 1; expected = 11; desired = 12 });
  check "zc get after cas" (Codec.Value 12) (Codec.Get 1);
  (* Blob traffic: by reference out, copy path on demand. *)
  let blob = String.init 600 (fun i -> Char.chr (i land 0xff)) in
  check "putb" Codec.Created (Codec.Putb { key = 3; value = blob });
  check "zc get blob" (Codec.Value_blob blob) (Codec.Get 3);
  check "getc blob" (Codec.Value_blob blob) (Codec.Getc 3);
  check "del blob" Codec.Deleted (Codec.Del 3);
  check "get after del" Codec.Not_found (Codec.Get 3);
  (* The largest legal blob still round-trips... *)
  let big = String.make Codec.blob_max 'x' in
  check "putb max" Codec.Created (Codec.Putb { key = 4; value = big });
  check "zc get max blob" (Codec.Value_blob big) (Codec.Get 4);
  (* ...and one byte over is refused at the codec, before any frame
     leaves the client. *)
  match
    Service.Shm_conn.call c
      (Codec.Putb { key = 4; value = String.make (Codec.blob_max + 1) 'x' })
  with
  | r -> Alcotest.failf "oversized putb: %s" (Codec.reply_to_string r)
  | exception Invalid_argument _ -> ()

let test_zc_remote_second_client_copy_path () =
  with_arena_server @@ fun ~path ~svc:_ ~srv:_ ~arena:_ ->
  let c1 = Service.Shm_conn.connect ~path in
  let c2 = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () ->
      Service.Shm_conn.close c1;
      Service.Shm_conn.close c2)
  @@ fun () ->
  Alcotest.(check bool) "c1 negotiates" true (Service.Shm_conn.enable_zc c1);
  (match Service.Shm_conn.call c1 (Codec.Put { key = 5; value = 55 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "c1 put: %s" (Codec.reply_to_string r));
  (* c2 never negotiated: its GET takes the routed path and arrives
     materialized — a raw reference must never reach it. *)
  (match Service.Shm_conn.call c2 (Codec.Get 5) with
  | Codec.Value 55 -> ()
  | r -> Alcotest.failf "c2 get: %s" (Codec.reply_to_string r));
  (* And c1's by-reference read agrees. *)
  match Service.Shm_conn.call c1 (Codec.Get 5) with
  | Codec.Value 55 -> ()
  | r -> Alcotest.failf "c1 get: %s" (Codec.reply_to_string r)

let test_zc_remote_dead_client_slot_swept () =
  with_arena_server @@ fun ~path ~svc:_ ~srv:_ ~arena ->
  let c = Service.Shm_conn.connect ~path in
  Alcotest.(check bool) "negotiates" true (Service.Shm_conn.enable_zc c);
  let slot = Option.get (Service.Shm_conn.zc_slot c) in
  (match Service.Shm_conn.call c (Codec.Put { key = 1; value = 1 }) with
  | Codec.Created -> ()
  | r -> Alcotest.failf "put: %s" (Codec.reply_to_string r));
  (* Park the reservation open, then die without releasing it. *)
  Service.Shm_conn.zc_hold c;
  Alcotest.(check bool) "era pinned" true (Shmalloc.Arena.slot_era arena ~slot <> 0);
  Service.Shm_conn.close c;
  (* The multiplexer sweeps the connection — and with it the arena
     reservation slot the dead client left pinned. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    Shmalloc.Arena.slot_era arena ~slot <> 0
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Alcotest.(check int) "slot force-cleared" 0 (Shmalloc.Arena.slot_era arena ~slot)

let test_zc_remote_stale_arena_swept () =
  (* A SIGKILLed daemon leaves its listen FIFO and arena file behind;
     the next serve's claim sweeps both before creating fresh state. *)
  let path = tmp_name "stale-arena" in
  Unix.mkfifo path 0o600;
  let stale = path ^ ".arena" in
  let a = Shmalloc.Arena.create ~path:stale ~slots:2 ~tids:1 () in
  Shmalloc.Arena.detach a;
  Alcotest.(check bool) "stale arena present" true (Sys.file_exists stale);
  Service.Shm_conn.claim_listen_path path;
  Alcotest.(check bool) "stale arena swept" false (Sys.file_exists stale);
  Alcotest.(check bool) "stale fifo swept" false (Sys.file_exists path)

let suites =
  [
    ( "shm.ring",
      [
        Alcotest.test_case "roundtrip" `Quick test_ring_roundtrip;
        Alcotest.test_case "wrap property (5k random frames)" `Quick
          test_ring_wrap_property;
        Alcotest.test_case "queued messages across wraps" `Quick
          test_ring_queued_wrap;
        Alcotest.test_case "full ring refuses, drain frees" `Quick
          test_ring_full_then_drain;
        Alcotest.test_case "torn commit stamp reported, sticky" `Quick
          test_ring_torn_stamp;
        Alcotest.test_case "mid-frame truncation reported" `Quick
          test_ring_truncated_write;
        Alcotest.test_case "damage detected at every wrap phase" `Quick
          test_ring_torn_at_wrap_phases;
        Alcotest.test_case "malformed sends rejected" `Quick
          test_ring_rejects_malformed;
        Alcotest.test_case "codec frames decode over the ring source" `Quick
          test_codec_over_ring;
      ] );
    ( "shm.seg",
      [
        Alcotest.test_case "create/attach, cross-mapping visibility" `Quick
          test_seg_create_attach;
        Alcotest.test_case "generation mismatch rejected" `Quick
          test_seg_generation_mismatch;
        Alcotest.test_case "closed segment rejected" `Quick
          test_seg_closed_attach;
        Alcotest.test_case "garbage file rejected" `Quick
          test_seg_garbage_attach;
        Alcotest.test_case "unlink sweeps seg + bells" `Quick
          test_seg_unlink_sweeps_files;
      ] );
    ( "shm.doorbell",
      [
        Alcotest.test_case "ready fast path makes no flag traffic" `Quick
          test_doorbell_ready_fast_path;
        Alcotest.test_case "ring wakes a sleeping waiter" `Quick
          test_doorbell_wakes_sleeper;
      ] );
    ( "shm.conn",
      [
        Alcotest.test_case "all opcodes round-trip" `Quick
          test_shm_conn_opcodes;
        Alcotest.test_case "500 puts + 500 gets" `Quick
          test_shm_conn_many_requests;
        Alcotest.test_case "two clients share state" `Quick
          test_shm_conn_two_clients;
        Alcotest.test_case "shed when client slots exhausted" `Quick
          test_shm_conn_shed_when_full;
        Alcotest.test_case "connect without daemon fails cleanly" `Quick
          test_shm_conn_connect_without_daemon;
        Alcotest.test_case "shutdown closes segments and unlinks" `Quick
          test_shm_conn_shutdown_wakes_client;
        Alcotest.test_case "reply faults surface as Closed (parity)" `Quick
          test_shm_conn_faults_parity;
        Alcotest.test_case "oversize stamped frame kills conn, not daemon"
          `Quick test_shm_conn_oversize_frame_kills_conn_not_daemon;
        Alcotest.test_case "foreign announce paths ignored" `Quick
          test_shm_conn_rejects_foreign_announce;
        Alcotest.test_case "stale listen FIFO swept and reclaimed" `Quick
          test_shm_conn_stale_listen_claim;
      ] );
    ( "shm.zerocopy",
      [
        Alcotest.test_case "bracket-protected direct reads" `Quick
          test_zerocopy_roundtrip;
        Alcotest.test_case "slot lease/exhaust/recycle" `Quick
          test_zerocopy_slot_exhaustion;
        Alcotest.test_case "stalled reader: robust bounded, EBR balloons"
          `Quick test_zerocopy_stalled_reader_robustness;
      ] );
    ( "shm.zc-remote",
      [
        Alcotest.test_case "by-reference GETs are reply-identical" `Quick
          test_zc_remote_roundtrip;
        Alcotest.test_case "non-negotiated client stays on copy path" `Quick
          test_zc_remote_second_client_copy_path;
        Alcotest.test_case "dead client's reservation slot swept" `Quick
          test_zc_remote_dead_client_slot_swept;
        Alcotest.test_case "stale arena file swept on claim" `Quick
          test_zc_remote_stale_arena_swept;
      ] );
  ]
