(* lib/replica: checksummed record codec, the injectable store, WAL
   group commit and crash recovery (including seeded corruption fuzz),
   atomic snapshots, and the primary/follower/failover protocol with
   Chaos.Oracle as the judge. *)

module Codec = Service.Codec
module Shard = Service.Shard
module Store = Replica.Store
module Dirty = Replica.Dirty
module Wal = Replica.Wal
module Snapshot = Replica.Snapshot
module Primary = Replica.Primary
module Follower = Replica.Follower
module Failover = Replica.Failover

(* ------------------------------------------------------------------ *)
(* Codec: CRC, records, snapshot frames, fold_frames *)

let test_crc32_vector () =
  (* The IEEE-802.3 check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int)
    "crc32 check vector" 0xCBF43926
    (Codec.crc32 "123456789" ~pos:0 ~len:9)

let frame_payloads s =
  let payloads, tail =
    Codec.fold_frames (Codec.string_source s) (fun acc p -> p :: acc) []
  in
  (List.rev payloads, tail)

let test_wal_record_roundtrip () =
  let cases =
    [
      (1, Codec.Set { key = 0; value = 0 });
      (42, Codec.Set { key = -7; value = max_int });
      (9999999, Codec.Unset min_int);
      (2, Codec.Unset 17);
    ]
  in
  let b = Buffer.create 64 in
  List.iter (fun (seq, m) -> Codec.encode_wal_record b ~seq m) cases;
  let payloads, tail = frame_payloads (Buffer.contents b) in
  Alcotest.(check bool) "clean tail" true (tail = None);
  Alcotest.(check int) "frame count" (List.length cases) (List.length payloads);
  List.iter2
    (fun (seq, m) payload ->
      let seq', m' = Codec.decode_wal_record payload in
      Alcotest.(check int) "seq" seq seq';
      Alcotest.(check string) "mutation" (Codec.mutation_to_string m)
        (Codec.mutation_to_string m'))
    cases payloads

let test_wal_record_detects_damage () =
  let b = Buffer.create 64 in
  Codec.encode_wal_record b ~seq:7 (Codec.Set { key = 5; value = 50 });
  let payloads, _ = frame_payloads (Buffer.contents b) in
  let payload = Bytes.copy (List.hd payloads) in
  (* Flip one bit anywhere in the payload: the CRC must catch it. *)
  for i = 0 to Bytes.length payload - 1 do
    let p = Bytes.copy payload in
    Bytes.set p i (Char.chr (Char.code (Bytes.get p i) lxor 0x10));
    match Codec.decode_wal_record p with
    | _ -> Alcotest.failf "bit flip at byte %d went undetected" i
    | exception Codec.Malformed _ -> ()
  done

let test_mutation_of_exec () =
  let put = Codec.Put { key = 1; value = 2 } in
  let cas = Codec.Cas { key = 1; expected = 2; desired = 3 } in
  let check name exp req rep =
    let got =
      Option.map Codec.mutation_to_string (Codec.mutation_of_exec req rep)
    in
    Alcotest.(check (option string))
      name
      (Option.map Codec.mutation_to_string exp)
      got
  in
  check "put created" (Some (Codec.Set { key = 1; value = 2 })) put Codec.Created;
  check "put updated" (Some (Codec.Set { key = 1; value = 2 })) put Codec.Updated;
  check "del deleted" (Some (Codec.Unset 1)) (Codec.Del 1) Codec.Deleted;
  check "cas ok logs its set" (Some (Codec.Set { key = 1; value = 3 })) cas
    Codec.Cas_ok;
  check "cas fail" None cas Codec.Cas_fail;
  check "get" None (Codec.Get 1) (Codec.Value 9);
  check "del miss" None (Codec.Del 1) Codec.Not_found;
  check "shed" None put Codec.Shed

let test_snap_frames_roundtrip () =
  let b = Buffer.create 64 in
  Codec.encode_snap_head b ~seq:123 ~count:2;
  Codec.encode_snap_kv b ~key:7 ~value:70;
  Codec.encode_snap_kv b ~key:(-1) ~value:0;
  let payloads, tail = frame_payloads (Buffer.contents b) in
  Alcotest.(check bool) "clean tail" true (tail = None);
  match payloads with
  | [ h; a; b' ] ->
      Alcotest.(check (pair int int)) "head" (123, 2) (Codec.decode_snap_head h);
      Alcotest.(check (pair int int)) "kv 1" (7, 70) (Codec.decode_snap_kv a);
      Alcotest.(check (pair int int)) "kv 2" (-1, 0) (Codec.decode_snap_kv b')
  | l -> Alcotest.failf "expected 3 frames, got %d" (List.length l)

let test_fold_frames_torn_tail () =
  let b = Buffer.create 64 in
  for seq = 1 to 3 do
    Codec.encode_wal_record b ~seq (Codec.Set { key = seq; value = seq })
  done;
  let whole = Buffer.contents b in
  let payloads, _ = frame_payloads whole in
  let last_len = 4 + Bytes.length (List.nth payloads 2) in
  (* Chop k bytes off the final frame for every possible k: fold must
     deliver the two complete frames and report the torn remainder. *)
  for k = 1 to last_len do
    let cut = String.sub whole 0 (String.length whole - k) in
    let got, tail = frame_payloads cut in
    if k = last_len then begin
      Alcotest.(check int) "clean boundary" 2 (List.length got);
      Alcotest.(check bool) "no tail at boundary" true (tail = None)
    end
    else begin
      Alcotest.(check int) "frames before tear" 2 (List.length got);
      Alcotest.(check (option int)) "torn bytes" (Some (last_len - k)) tail
    end
  done

(* ------------------------------------------------------------------ *)
(* Store: mem crash semantics, fs atomic publish *)

let test_mem_store_crash () =
  let store, h = Store.Mem.create () in
  let w = store.Store.s_append "f" in
  w.Store.w_append "synced";
  w.Store.w_sync ();
  w.Store.w_append "-pending";
  Alcotest.(check string) "read sees pending" "synced-pending"
    (store.Store.s_read "f");
  Alcotest.(check int) "synced bytes" 6 (Store.Mem.synced_bytes h "f");
  Alcotest.(check int) "pending bytes" 8 (Store.Mem.pending_bytes h "f");
  Store.Mem.crash h;
  Alcotest.(check string) "unsynced bytes vanished" "synced"
    (store.Store.s_read "f");
  Alcotest.(check int) "one sync counted" 1 (Store.Mem.syncs h);
  (* Atomic publish is durable without an explicit sync. *)
  store.Store.s_write "g" "published";
  Store.Mem.crash h;
  Alcotest.(check string) "publish survived crash" "published"
    (store.Store.s_read "g");
  Alcotest.(check (list string)) "list is sorted" [ "f"; "g" ]
    (store.Store.s_list ())

let with_tmp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "replica-test-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_fs_store () =
  with_tmp_dir @@ fun dir ->
  let store = Store.fs ~dir in
  let w = store.Store.s_append "a.seg" in
  w.Store.w_append "hello ";
  w.Store.w_append "world";
  w.Store.w_sync ();
  w.Store.w_close ();
  Alcotest.(check string) "append + read" "hello world"
    (store.Store.s_read "a.seg");
  store.Store.s_write "b.snap" "bindings";
  Alcotest.(check string) "atomic publish" "bindings"
    (store.Store.s_read "b.snap");
  Alcotest.(check (list string)) "sorted listing, no tmp"
    [ "a.seg"; "b.snap" ] (store.Store.s_list ());
  store.Store.s_delete "a.seg";
  store.Store.s_delete "a.seg" (* idempotent *);
  Alcotest.(check (list string)) "deleted" [ "b.snap" ] (store.Store.s_list ())

(* ------------------------------------------------------------------ *)
(* WAL: group commit, reopen, rotation, truncation, torn commit *)

let mset k = Codec.Set { key = k; value = k * 10 }

let append_run w lo hi =
  for k = lo to hi do
    ignore (Wal.append w (mset k))
  done;
  Wal.commit w

let test_wal_group_commit () =
  let store, h = Store.Mem.create () in
  let w, r = Wal.open_ ~store ~shard:0 () in
  Alcotest.(check int) "fresh log" 0 r.Wal.r_last_seq;
  append_run w 1 4;
  append_run w 5 7;
  append_run w 8 10;
  Alcotest.(check int) "one sync per commit, not per record" 3
    (Store.Mem.syncs h);
  Alcotest.(check int) "committed" 10 (Wal.committed_seq w);
  Wal.commit w;
  Alcotest.(check int) "empty commit costs no fsync" 3 (Store.Mem.syncs h);
  (match Wal.read_from w ~from:0 ~max:5 with
  | `Batch (records, last) ->
      Alcotest.(check int) "read_from last" 10 last;
      Alcotest.(check (list int)) "first five seqs" [ 1; 2; 3; 4; 5 ]
        (List.map fst records)
  | `Too_old _ -> Alcotest.fail "unexpected Too_old");
  (match Wal.read_from w ~from:10 ~max:5 with
  | `Batch ([], 10) -> ()
  | _ -> Alcotest.fail "caught-up read should be an empty batch");
  Wal.close w;
  (* Reopen: everything committed is still there. *)
  let w2, r2 = Wal.open_ ~store ~shard:0 () in
  Alcotest.(check int) "reopen records" 10 r2.Wal.r_records;
  Alcotest.(check int) "reopen last seq" 10 r2.Wal.r_last_seq;
  Alcotest.(check int) "reopen truncated nothing" 0 r2.Wal.r_truncated_bytes;
  append_run w2 11 11;
  Alcotest.(check int) "seqs continue" 11 (Wal.committed_seq w2);
  Wal.close w2

let test_wal_rotation_and_truncate () =
  let store, _ = Store.Mem.create () in
  (* Tiny segments force rotation every couple of commits. *)
  let w, _ = Wal.open_ ~store ~shard:3 ~segment_bytes:128 () in
  for run = 0 to 9 do
    append_run w ((run * 5) + 1) ((run + 1) * 5)
  done;
  Alcotest.(check bool) "rotated" true (Wal.segments w > 1);
  Wal.close w;
  let records, r = Wal.scan ~store ~shard:3 in
  Alcotest.(check int) "scan sees all records" 50 (List.length records);
  Alcotest.(check int) "scan last seq" 50 r.Wal.r_last_seq;
  let w2, _ = Wal.open_ ~store ~shard:3 ~segment_bytes:128 () in
  let segs_before = Wal.segments w2 in
  Wal.truncate_upto w2 ~seq:40;
  Alcotest.(check bool) "segments pruned" true (Wal.segments w2 < segs_before);
  Alcotest.(check int) "base advanced" 40 (Wal.base_seq w2);
  (match Wal.read_from w2 ~from:0 ~max:10 with
  | `Too_old base -> Alcotest.(check int) "too old names the base" 40 base
  | `Batch _ -> Alcotest.fail "truncated window must be Too_old");
  (match Wal.read_from w2 ~from:40 ~max:100 with
  | `Batch (records, 50) ->
      Alcotest.(check (list int)) "tail intact"
        [ 41; 42; 43; 44; 45; 46; 47; 48; 49; 50 ]
        (List.map fst records)
  | _ -> Alcotest.fail "tail read failed");
  Wal.close w2

let test_wal_torn_commit () =
  let store, h = Store.Mem.create () in
  let w, _ = Wal.open_ ~store ~shard:0 () in
  append_run w 1 5;
  Wal.arm_torn_commit w;
  for k = 6 to 8 do
    ignore (Wal.append w (mset k))
  done;
  (match Wal.commit w with
  | () -> Alcotest.fail "armed commit must raise Crashed"
  | exception Wal.Crashed -> ());
  Alcotest.(check int) "nothing promoted" 5 (Wal.committed_seq w);
  (match Wal.append w (mset 9) with
  | _ -> Alcotest.fail "dead log must refuse appends"
  | exception Wal.Crashed -> ());
  Store.Mem.crash h;
  let w2, r = Wal.open_ ~store ~shard:0 () in
  Alcotest.(check int) "acked history only" 5 r.Wal.r_records;
  Alcotest.(check bool) "torn tail truncated" true (r.Wal.r_truncated_bytes > 0);
  Alcotest.(check bool) "truncated segment named" true
    (r.Wal.r_truncated_segment <> None);
  (* The log is writable again at the right seq. *)
  append_run w2 6 6;
  Alcotest.(check int) "resumes after acked" 6 (Wal.committed_seq w2);
  Wal.close w2

(* Seeded corruption fuzz: tail damage always truncates cleanly;
   mid-log damage is always a loud Corrupt naming a seq. *)

let build_fuzz_wal store =
  let w, _ = Wal.open_ ~store ~shard:0 ~segment_bytes:256 () in
  for run = 0 to 8 do
    append_run w ((run * 5) + 1) ((run + 1) * 5)
  done;
  Wal.close w;
  let segs =
    List.filter (fun n -> Filename.check_suffix n ".seg") (store.Store.s_list ())
  in
  assert (List.length segs > 2);
  segs

let test_wal_fuzz_tail_corruption () =
  for seed = 0 to 7 do
    let rng = Prims.Rng.create ~seed:(1000 + seed) in
    let store, _ = Store.Mem.create () in
    let segs = build_fuzz_wal store in
    let last = List.nth segs (List.length segs - 1) in
    let data = store.Store.s_read last in
    let len = String.length data in
    (* A just-rotated (hence empty or short) active segment has no
       frame to tear, so only the garbage-residue case applies. *)
    (match if len < 24 then 2 else Prims.Rng.below rng 3 with
    | 0 ->
        (* Torn write: the final frame loses its suffix. *)
        let cut = 1 + Prims.Rng.below rng (min 20 (len - 1)) in
        store.Store.s_write last (String.sub data 0 (len - cut))
    | 1 ->
        (* Bit rot inside the final record's bytes. *)
        let i = len - 1 - Prims.Rng.below rng (min 8 len) in
        let b = Bytes.of_string data in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        store.Store.s_write last (Bytes.to_string b)
    | _ ->
        (* Crash residue: garbage appended past the last frame. *)
        let garbage =
          String.init
            (1 + Prims.Rng.below rng 16)
            (fun _ -> Char.chr (Prims.Rng.below rng 256))
        in
        store.Store.s_write last (data ^ garbage));
    match Wal.open_ ~store ~shard:0 ~segment_bytes:256 () with
    | w, r ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: truncated some tail bytes" seed)
          true
          (r.Wal.r_truncated_bytes > 0);
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: most records survive" seed)
          true
          (r.Wal.r_records >= 35);
        (* Recovery republished a clean log: a second scan is clean. *)
        let _, r2 = Wal.scan ~store ~shard:0 in
        Alcotest.(check int)
          (Printf.sprintf "seed %d: rescan clean" seed)
          0 r2.Wal.r_truncated_bytes;
        Wal.close w
    | exception Wal.Corrupt { reason; _ } ->
        Alcotest.failf "seed %d: tail damage must truncate, got Corrupt: %s"
          seed reason
  done

let test_wal_fuzz_midlog_corruption () =
  for seed = 0 to 7 do
    let rng = Prims.Rng.create ~seed:(2000 + seed) in
    let store, _ = Store.Mem.create () in
    let segs = build_fuzz_wal store in
    (* Damage a non-final segment: acknowledged history. *)
    let victim = List.nth segs (Prims.Rng.below rng (List.length segs - 1)) in
    let data = store.Store.s_read victim in
    let i = Prims.Rng.below rng (String.length data) in
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x04));
    store.Store.s_write victim (Bytes.to_string b);
    (match Wal.scan ~store ~shard:0 with
    | _ ->
        Alcotest.failf "seed %d: mid-log damage in %s went unnoticed" seed
          victim
    | exception Wal.Corrupt { seq; segment; _ } ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d: corrupt names the segment" seed)
          victim segment;
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: corrupt names a plausible seq" seed)
          true
          (seq >= 1 && seq <= 46));
    match Wal.open_ ~store ~shard:0 ~segment_bytes:256 () with
    | w, _ -> Wal.close w; Alcotest.failf "seed %d: open_ must refuse too" seed
    | exception Wal.Corrupt _ -> ()
  done

(* A deleted segment is a hole in acked history, not a fresh log. *)
let test_wal_missing_segment () =
  let store, _ = Store.Mem.create () in
  let segs = build_fuzz_wal store in
  store.Store.s_delete (List.nth segs 1);
  match Wal.scan ~store ~shard:0 with
  | _ -> Alcotest.fail "missing segment went unnoticed"
  | exception Wal.Corrupt { reason; _ } ->
      Alcotest.(check bool) "reason mentions the gap" true
        (String.length reason > 0)

(* A CRC-damaged record FOLLOWED by well-formed frames is bitrot in
   acknowledged history, not a tear — loud even in the newest segment.
   Truncation is reserved for damage that runs to EOF (directly, or
   through an mmap zero tail). *)
let test_wal_last_segment_midrot_is_loud () =
  let build () =
    let store, _ = Store.Mem.create () in
    let w, _ = Wal.open_ ~store ~shard:0 () in
    append_run w 1 10;
    Wal.close w;
    let seg =
      List.find
        (fun n -> Filename.check_suffix n ".seg")
        (store.Store.s_list ())
    in
    (store, seg, Bytes.of_string (store.Store.s_read seg))
  in
  let frame_start b n =
    let pos = ref 0 in
    for _ = 1 to n do
      pos := !pos + 4 + Int32.to_int (Bytes.get_int32_be b !pos)
    done;
    !pos
  in
  let flip b i = Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40)) in
  (* Rot record 3 of 10: seven well-formed frames follow. *)
  let store, seg, b = build () in
  flip b (frame_start b 2 + 6);
  store.Store.s_write seg (Bytes.to_string b);
  (match Wal.scan ~store ~shard:0 with
  | _ -> Alcotest.fail "mid-segment rot was silently truncated"
  | exception Wal.Corrupt { segment; _ } ->
      Alcotest.(check string) "corrupt names the only segment" seg segment);
  (* Same damage in the FINAL record runs to EOF: the torn-tail rule
     still applies and everything acked before it survives. *)
  let store, seg, b = build () in
  flip b (frame_start b 9 + 6);
  store.Store.s_write seg (Bytes.to_string b);
  let records, r = Wal.scan ~store ~shard:0 in
  Alcotest.(check int) "records before the tear survive" 9
    (List.length records);
  Alcotest.(check bool) "final-record damage truncates" true
    (r.Wal.r_truncated_bytes > 0)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

let test_snapshot_roundtrip () =
  let store, _ = Store.Mem.create () in
  Alcotest.(check bool) "no snapshot yet" true
    (Snapshot.load_latest ~store ~shard:2 = None);
  let bindings = [ (1, 10); (2, 20); (3, 30) ] in
  let _ = Snapshot.write ~store ~shard:2 ~seq:5 bindings in
  let _ = Snapshot.write ~store ~shard:2 ~seq:9 [ (1, 11) ] in
  (* Another shard's snapshot must not shadow ours. *)
  let _ = Snapshot.write ~store ~shard:0 ~seq:99 [] in
  (match Snapshot.load_latest ~store ~shard:2 with
  | Some (got, seq, _) ->
      Alcotest.(check int) "latest seq wins" 9 seq;
      Alcotest.(check (list (pair int int))) "bindings" [ (1, 11) ] got
  | None -> Alcotest.fail "snapshot vanished");
  let deleted = Snapshot.delete_older ~store ~shard:2 ~keep_seq:9 in
  Alcotest.(check int) "older snapshot deleted" 1 deleted;
  match Snapshot.load_latest ~store ~shard:2 with
  | Some (_, 9, _) -> ()
  | _ -> Alcotest.fail "kept snapshot must remain loadable"

let test_snapshot_strict_loader () =
  let store, _ = Store.Mem.create () in
  let name = Snapshot.write ~store ~shard:1 ~seq:4 [ (1, 10); (2, 20) ] in
  let data = store.Store.s_read name in
  (* Bit rot. *)
  let b = Bytes.of_string data in
  Bytes.set b (String.length data - 2)
    (Char.chr (Char.code (Bytes.get b (String.length data - 2)) lxor 1));
  store.Store.s_write name (Bytes.to_string b);
  (match Snapshot.load_latest ~store ~shard:1 with
  | _ -> Alcotest.fail "bit-rotted snapshot loaded"
  | exception Snapshot.Corrupt _ -> ());
  (* Truncation: snapshots publish atomically, so a short file is
     damage, never crash residue. *)
  store.Store.s_write name (String.sub data 0 (String.length data - 3));
  match Snapshot.load_latest ~store ~shard:1 with
  | _ -> Alcotest.fail "truncated snapshot loaded"
  | exception Snapshot.Corrupt _ -> ()

(* ------------------------------------------------------------------ *)
(* Primary / follower / failover *)

let hashmap = Workload.Registry.find_structure "hashmap"
let hyaline = Workload.Registry.find_scheme "hyaline"

let mk_cfg ?(shards = 2) ?(clients = 4) () =
  { Shard.default_config with Shard.shards; clients }

let drive_ops svc ~seed ~rounds ~range ops =
  let rng = Prims.Rng.create ~seed in
  for _ = 1 to rounds do
    let key = Prims.Rng.below rng range in
    let req =
      match Prims.Rng.below rng 10 with
      | 0 | 1 | 2 | 3 ->
          Codec.Put { key; value = Prims.Rng.below rng 1000 }
      | 4 | 5 -> Codec.Del key
      | 6 ->
          Codec.Cas
            {
              key;
              expected = Prims.Rng.below rng 1000;
              desired = Prims.Rng.below rng 1000;
            }
      | _ -> Codec.Get key
    in
    let reply = Shard.call svc ~tid:0 req in
    ops := (req, reply) :: !ops
  done

let primary_state p =
  List.concat
    (List.init p.Primary.svc.Shard.nshards (fun shard ->
         Primary.sweep p ~shard))
  |> List.sort compare

let follower_state f =
  List.concat
    (List.init (Follower.nshards f) (fun shard -> Follower.sweep f ~shard))
  |> List.sort compare

let test_primary_recovery_cycle () =
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, boot = Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store () in
  Alcotest.(check int) "fresh boot replays nothing" 0
    (Array.fold_left ( + ) 0 boot.Primary.b_replayed);
  drive_ops p.Primary.svc ~seed:11 ~rounds:300 ~range:64 ops;
  (* Snapshot + truncate mid-history: recovery must go snapshot-then-log. *)
  for shard = 0 to 1 do
    ignore (Primary.snapshot_shard p ~shard ())
  done;
  drive_ops p.Primary.svc ~seed:12 ~rounds:300 ~range:64 ops;
  let live = primary_state p in
  Primary.stop p;
  let p2, boot2 = Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store () in
  Alcotest.(check bool) "bootstrap used a snapshot" true
    (Array.fold_left ( + ) 0 boot2.Primary.b_snap_bindings > 0);
  Alcotest.(check bool) "bootstrap replayed the log tail" true
    (Array.fold_left ( + ) 0 boot2.Primary.b_replayed > 0);
  let recovered = primary_state p2 in
  Primary.stop p2;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  Alcotest.(check (list (pair int int))) "live state = oracle" expected live;
  Alcotest.(check (list (pair int int)))
    "recovered state = oracle replay of acked history" expected recovered

let test_torn_commit_acks_nothing () =
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, _ = Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store () in
  let svc = p.Primary.svc in
  drive_ops svc ~seed:21 ~rounds:200 ~range:64 ops;
  Primary.arm_torn_commit p ~shard:0;
  (* Un-ackable work for shard 0: its next group commit dies mid-record. *)
  let late_acks = Atomic.make 0 in
  let submitted = ref 0 in
  let k = ref 1_000 in
  while !submitted < 16 do
    if svc.Shard.shard_of_key !k = 0 then begin
      incr submitted;
      svc.Shard.submit ~tid:1
        (Codec.Put { key = !k; value = !k })
        (function
          | Codec.Shed | Codec.Error _ -> ()
          | _ -> Atomic.incr late_acks)
    end;
    incr k
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while svc.Shard.consumer_alive 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check bool) "armed shard died" false (svc.Shard.consumer_alive 0);
  Alcotest.(check int) "nothing from the torn run was acked" 0
    (Atomic.get late_acks);
  Primary.kill p;
  Alcotest.(check bool) "primary reports dead" false (Primary.alive p);
  let p2, boot2 = Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store () in
  Alcotest.(check bool) "recovery truncated the torn tail" true
    (Array.fold_left
       (fun a (r : Wal.recovery) -> a + r.Wal.r_truncated_bytes)
       0 boot2.Primary.b_recovery
    > 0);
  let recovered = primary_state p2 in
  Primary.stop p2;
  Primary.stop p;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  Alcotest.(check (list (pair int int)))
    "recovered = acked history exactly" expected recovered

let test_follower_sync_and_promote () =
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, _ = Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store () in
  let svc = p.Primary.svc in
  drive_ops svc ~seed:31 ~rounds:200 ~range:64 ops;
  for shard = 0 to 1 do
    ignore (Primary.snapshot_shard p ~shard ())
  done;
  drive_ops svc ~seed:32 ~rounds:200 ~range:64 ops;
  (* The log was truncated, so a cold follower must bootstrap from the
     shared store — a from-zero pull would be Too_old. *)
  (match Primary.handle p (Codec.Rep_pull { shard = 0; from = 0; max = 10 }) with
  | Some (Codec.Error _) -> ()
  | r ->
      Alcotest.failf "pull into the truncated window answered %s"
        (match r with Some r -> Codec.reply_to_string r | None -> "None"));
  let pull ~shard ~from ~max =
    match Primary.handle p (Codec.Rep_pull { shard; from; max }) with
    | Some r -> r
    | None -> Codec.Error "not a replication request"
  in
  let f, fboot =
    Follower.create ~structure:hashmap ~scheme:hyaline
      (mk_cfg ~clients:2 ()) ~pull ~store ()
  in
  Alcotest.(check bool) "follower bootstrapped from the snapshot" true
    (Array.fold_left ( + ) 0 fboot.Follower.b_snap_bindings > 0);
  ignore (Follower.sync f);
  Alcotest.(check (list (pair int int)))
    "synced follower = primary" (primary_state p) (follower_state f);
  Alcotest.(check (list int)) "lag is zero after sync" [ 0; 0 ]
    (Array.to_list (Follower.lag f));
  (* More acked history the follower does NOT pull, then the crash. *)
  drive_ops svc ~seed:33 ~rounds:150 ~range:64 ops;
  Primary.arm_torn_commit p ~shard:0;
  let k = ref 1_000 in
  let submitted = ref 0 in
  while !submitted < 8 do
    if svc.Shard.shard_of_key !k = 0 then begin
      incr submitted;
      svc.Shard.submit ~tid:1 (Codec.Put { key = !k; value = 1 }) (fun _ -> ())
    end;
    incr k
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while svc.Shard.consumer_alive 0 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Primary.kill p;
  (* Confirmed-death detection, then promotion from the shared store. *)
  let mon =
    Failover.monitor
      ~alive:(fun () -> Primary.alive p)
      ~heartbeat:svc.Shard.heartbeat ~nshards:2 ()
  in
  let polls = ref 0 in
  while (not (Failover.poll mon)) && !polls < 10_000 do
    incr polls;
    Unix.sleepf 0.001
  done;
  Alcotest.(check bool) "death confirmed" true (Failover.confirmed mon);
  let prom = Failover.promote f ~store in
  Alcotest.(check bool) "promotion recovered unpulled records" true
    (Array.fold_left ( + ) 0 prom.Failover.p_caught_up > 0);
  Alcotest.(check bool) "torn tail reported, not an error" true
    (Array.fold_left ( + ) 0 prom.Failover.p_torn_bytes > 0);
  let promoted = follower_state f in
  Primary.stop p;
  Follower.stop f;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  Alcotest.(check (list (pair int int)))
    "promoted follower = oracle replay of acked history" expected promoted

(* Every exit path of the kvd chase loop must RETURN so the caller's
   cleanup runs.  The regression: a [`Err] pull used to become
   [failwith], matching neither handler in kvd and skipping the
   report/close/stop sequence entirely. *)
let test_follower_drive_exit_paths () =
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store ()
  in
  drive_ops p.Primary.svc ~seed:41 ~rounds:100 ~range:64 ops;
  let mode = ref `Ok in
  let pull ~shard ~from ~max =
    match !mode with
    | `Ok -> (
        match Primary.handle p (Codec.Rep_pull { shard; from; max }) with
        | Some r -> r
        | None -> Codec.Error "not a replication request")
    | `Err -> Codec.Error "injected pull failure"
    | `Gone -> raise Service.Conn.Closed
  in
  let f, _ =
    Follower.create ~structure:hashmap ~scheme:hyaline (mk_cfg ~clients:2 ())
      ~pull ~store ()
  in
  (* Happy path: catch up, then the stop flag ends the loop. *)
  let progressed = ref 0 in
  let budget = ref 50 in
  let running () =
    decr budget;
    !budget > 0
  in
  (match
     Follower.drive f ~running ~poll_interval:0.0005
       ~on_progress:(fun () -> incr progressed)
       ()
   with
  | `Stopped -> ()
  | _ -> Alcotest.fail "flagged stop must return `Stopped");
  Alcotest.(check bool) "drive made progress before stopping" true
    (!progressed > 0);
  Alcotest.(check (list (pair int int)))
    "driven follower = primary" (primary_state p) (follower_state f);
  (* A pull-level error is a return value, not an escaping exception. *)
  mode := `Err;
  (match Follower.drive f ~running:(fun () -> true) () with
  | `Pull_error m ->
      Alcotest.(check string) "error text surfaced" "injected pull failure" m
  | _ -> Alcotest.fail "an `Err pull must return `Pull_error");
  (* The primary hanging up is a return value too. *)
  mode := `Gone;
  (match Follower.drive f ~running:(fun () -> true) () with
  | `Primary_gone -> ()
  | _ -> Alcotest.fail "Closed must return `Primary_gone");
  (* The cleanup the old code skipped is reachable after every exit. *)
  Follower.stop f;
  Primary.stop p

let test_rep_opcodes_over_socket () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "replica-test-%d.sock" (Unix.getpid ()))
  in
  let store, _ = Store.Mem.create () in
  let p, _ = Primary.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) ~store () in
  let server =
    Service.Conn.serve_unix p.Primary.svc ~path
      ~ext:(fun req -> Primary.handle p req)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      Primary.stop p)
    (fun () ->
      let fd = Service.Conn.connect_unix ~path in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (match Service.Conn.call_fd fd Codec.Rep_info with
          | Codec.Rep_state committed ->
              Alcotest.(check int) "one seq per shard" 2
                (Array.length committed)
          | r -> Alcotest.failf "Rep_info answered %s" (Codec.reply_to_string r));
          (* A durable put, then pull its shard's stream. *)
          (match Service.Conn.call_fd fd (Codec.Put { key = 7; value = 77 }) with
          | Codec.Created -> ()
          | r -> Alcotest.failf "put answered %s" (Codec.reply_to_string r));
          let shard = p.Primary.svc.Shard.shard_of_key 7 in
          match
            Service.Conn.call_fd fd (Codec.Rep_pull { shard; from = 0; max = 10 })
          with
          | Codec.Rep_batch { last; records } ->
              Alcotest.(check bool) "stream advanced" true (last >= 1);
              Alcotest.(check bool) "the put is in the stream" true
                (List.exists
                   (fun (_, m) -> m = Codec.Set { key = 7; value = 77 })
                   records)
          | r -> Alcotest.failf "Rep_pull answered %s" (Codec.reply_to_string r)))

let test_socket_claim () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "replica-claim-%d.sock" (Unix.getpid ()))
  in
  (* A stale path (here: a plain leftover file, same as a crashed
     daemon's socket inode) is probed and claimed. *)
  let oc = open_out path in
  output_string oc "stale";
  close_out oc;
  let svc = Shard.create ~structure:hashmap ~scheme:hyaline (mk_cfg ()) in
  let server = Service.Conn.serve_unix svc ~path () in
  Fun.protect
    ~finally:(fun () ->
      Service.Conn.shutdown server;
      svc.Shard.stop ())
    (fun () ->
      (* A live incumbent is never clobbered. *)
      match Service.Conn.serve_unix svc ~path () with
      | server2 ->
          Service.Conn.shutdown server2;
          Alcotest.fail "second daemon clobbered a live socket"
      | exception Service.Conn.Addr_in_use p ->
          Alcotest.(check string) "names the path" path p)

(* ------------------------------------------------------------------ *)
(* Dirty sets: the lock-free write-set tracker behind delta snapshots *)

let test_dirty_basics () =
  Alcotest.(check bool) "none is none" true (Dirty.is_none Dirty.none);
  Alcotest.(check bool) "none absorbs adds" true (Dirty.add Dirty.none ~key:3);
  Alcotest.(check int) "none holds nothing" 0 (Dirty.count Dirty.none);
  let d = Dirty.create ~cap:60 in
  Alcotest.(check bool) "a fresh set is live" false (Dirty.is_none d);
  Alcotest.(check int) "cap rounds to a power of two" 64 (Dirty.capacity d);
  Alcotest.(check bool) "add" true (Dirty.add d ~key:7);
  Alcotest.(check bool) "duplicate add" true (Dirty.add d ~key:7);
  Alcotest.(check bool) "second key" true (Dirty.add d ~key:9);
  Alcotest.(check int) "duplicates deduped" 2 (Dirty.count d);
  Alcotest.(check (list int)) "elements" [ 7; 9 ]
    (List.sort compare (Dirty.elements d));
  Alcotest.(check bool) "no overflow yet" false (Dirty.overflowed d)

let test_dirty_seal_handoff () =
  let cell = Atomic.make (Dirty.create ~cap:64) in
  ignore (Dirty.add (Atomic.get cell) ~key:1);
  (* Snapshot start: swap a fresh set in, seal the old one. *)
  let old = Atomic.exchange cell (Dirty.create ~cap:64) in
  Dirty.seal old;
  Alcotest.(check bool) "post-seal add refused" false (Dirty.add old ~key:2);
  (* The insert-then-check order means a refused add may still sit in
     the sealed set — a harmless superset for the delta reader; what
     matters is that every pre-seal add is covered. *)
  Alcotest.(check bool) "pre-seal adds are covered" true
    (List.mem 1 (Dirty.elements old));
  (* The producer-side retry: a refused add re-reads the cell and
     lands in the fresh set — a key is never lost between deltas. *)
  let rec record key =
    if not (Dirty.add (Atomic.get cell) ~key) then record key
  in
  record 2;
  Alcotest.(check (list int)) "retry landed in the fresh set" [ 2 ]
    (List.sort compare (Dirty.elements (Atomic.get cell)))

let test_dirty_overflow () =
  let d = Dirty.create ~cap:16 in
  for k = 1 to 8 do
    ignore (Dirty.add d ~key:k)
  done;
  Alcotest.(check bool) "half occupancy is still fine" false
    (Dirty.overflowed d);
  ignore (Dirty.add d ~key:9);
  Alcotest.(check bool) "past half occupancy poisons" true (Dirty.overflowed d);
  Alcotest.(check bool) "a poisoned set still accepts" true
    (Dirty.add d ~key:100);
  Alcotest.(check bool) "poison is sticky" true (Dirty.overflowed d);
  (* Negative keys (outside the service key space) poison instead of
     corrupting the probe sequence. *)
  let d2 = Dirty.create ~cap:16 in
  ignore (Dirty.add d2 ~key:(-5));
  Alcotest.(check bool) "negative key poisons" true (Dirty.overflowed d2);
  (* Explicit poison: the overflowed-merge-back path. *)
  let d3 = Dirty.create ~cap:16 in
  Dirty.poison d3;
  Alcotest.(check bool) "explicit poison" true (Dirty.overflowed d3)

(* ------------------------------------------------------------------ *)
(* Delta chains: write_delta / load_chain discipline *)

let test_snapshot_delta_chain () =
  let store, _ = Store.Mem.create () in
  let _ = Snapshot.write ~store ~shard:1 ~seq:10 [ (1, 10); (2, 20); (3, 30) ] in
  let _ =
    Snapshot.write_delta ~store ~shard:1 ~from:10 ~seq:14
      [ (2, Some 21); (4, Some 40); (3, None) ]
  in
  let _ =
    Snapshot.write_delta ~store ~shard:1 ~from:14 ~seq:19
      [ (4, None); (5, Some 50) ]
  in
  (* Another shard's chain must not interfere. *)
  let _ = Snapshot.write ~store ~shard:0 ~seq:99 [ (9, 90) ] in
  let c = Snapshot.load_chain ~store ~shard:1 in
  (match c with
  | Some c ->
      Alcotest.(check int) "chain tip" 19 c.Snapshot.c_seq;
      Alcotest.(check int) "base seq" 10 c.Snapshot.c_base_seq;
      Alcotest.(check int) "two links" 2 c.Snapshot.c_deltas;
      Alcotest.(check (list (pair int int)))
        "sets applied, tombstones removed"
        [ (1, 10); (2, 21); (5, 50) ]
        c.Snapshot.c_bindings
  | None -> Alcotest.fail "chain vanished");
  (* load_latest still answers the newest BASE, not the chain tip. *)
  (match Snapshot.load_latest ~store ~shard:1 with
  | Some (_, 10, _) -> ()
  | _ -> Alcotest.fail "load_latest must keep answering the base");
  (* delete_older after a compacting base at the tip drops the whole
     superseded chain. *)
  let _ = Snapshot.write ~store ~shard:1 ~seq:19 [ (1, 10); (2, 21); (5, 50) ] in
  let deleted = Snapshot.delete_older ~store ~shard:1 ~keep_seq:19 in
  Alcotest.(check int) "old base + both deltas deleted" 3 deleted;
  match Snapshot.load_chain ~store ~shard:1 with
  | Some c ->
      Alcotest.(check int) "compacted chain is just the base" 0
        c.Snapshot.c_deltas;
      Alcotest.(check (list (pair int int)))
        "compacted bindings survive"
        [ (1, 10); (2, 21); (5, 50) ]
        c.Snapshot.c_bindings
  | None -> Alcotest.fail "compacted chain vanished"

let test_snapshot_chain_violations () =
  (* A missing middle link is a loud Corrupt, never a silent skip. *)
  let store, _ = Store.Mem.create () in
  let _ = Snapshot.write ~store ~shard:1 ~seq:10 [ (1, 10) ] in
  let d1 = Snapshot.write_delta ~store ~shard:1 ~from:10 ~seq:14 [ (2, Some 2) ] in
  let _ = Snapshot.write_delta ~store ~shard:1 ~from:14 ~seq:19 [ (3, Some 3) ] in
  store.Store.s_delete d1;
  (match Snapshot.load_chain ~store ~shard:1 with
  | _ -> Alcotest.fail "missing delta link went unnoticed"
  | exception Snapshot.Corrupt { reason; _ } ->
      Alcotest.(check bool) "reason names the gap" true
        (String.length reason > 0));
  (* A stamp gap (delta chaining from a seq that is not the tip). *)
  let store, _ = Store.Mem.create () in
  let _ = Snapshot.write ~store ~shard:1 ~seq:10 [ (1, 10) ] in
  let _ = Snapshot.write_delta ~store ~shard:1 ~from:12 ~seq:14 [ (2, Some 2) ] in
  (match Snapshot.load_chain ~store ~shard:1 with
  | _ -> Alcotest.fail "stamp gap went unnoticed"
  | exception Snapshot.Corrupt _ -> ());
  (* Deltas with no base at all: unloadable, loud. *)
  let store, _ = Store.Mem.create () in
  let _ = Snapshot.write_delta ~store ~shard:1 ~from:10 ~seq:14 [ (2, Some 2) ] in
  (match Snapshot.load_chain ~store ~shard:1 with
  | _ -> Alcotest.fail "orphan delta went unnoticed"
  | exception Snapshot.Corrupt _ -> ());
  (* Bit rot inside a delta frame: the strict loader refuses. *)
  let store, _ = Store.Mem.create () in
  let _ = Snapshot.write ~store ~shard:1 ~seq:10 [ (1, 10) ] in
  let d = Snapshot.write_delta ~store ~shard:1 ~from:10 ~seq:14 [ (2, Some 2) ] in
  let data = store.Store.s_read d in
  let b = Bytes.of_string data in
  let i = String.length data - 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  store.Store.s_write d (Bytes.to_string b);
  match Snapshot.load_chain ~store ~shard:1 with
  | _ -> Alcotest.fail "bit-rotted delta loaded"
  | exception Snapshot.Corrupt _ -> ()

let test_snapshot_chain_compaction_residue () =
  (* Crash between publishing a compacting base and deleting the
     superseded chain: the loader must pick the new base and ignore
     every delta at or below its seq. *)
  let store, _ = Store.Mem.create () in
  let _ = Snapshot.write ~store ~shard:1 ~seq:10 [ (1, 10) ] in
  let _ = Snapshot.write_delta ~store ~shard:1 ~from:10 ~seq:14 [ (2, Some 2) ] in
  let _ = Snapshot.write_delta ~store ~shard:1 ~from:14 ~seq:19 [ (3, Some 3) ] in
  (* The compacting base published; the crash skipped delete_older. *)
  let _ = Snapshot.write ~store ~shard:1 ~seq:19 [ (1, 10); (2, 2); (3, 3) ] in
  match Snapshot.load_chain ~store ~shard:1 with
  | Some c ->
      Alcotest.(check int) "new base wins" 19 c.Snapshot.c_base_seq;
      Alcotest.(check int) "stale deltas ignored" 0 c.Snapshot.c_deltas;
      Alcotest.(check (list (pair int int)))
        "bindings from the new base"
        [ (1, 10); (2, 2); (3, 3) ]
        c.Snapshot.c_bindings
  | None -> Alcotest.fail "chain vanished after simulated compaction crash"

(* ------------------------------------------------------------------ *)
(* Primary delta snapshots: publish, chain recovery, fallback *)

let test_primary_delta_snapshot_cycle () =
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true (mk_cfg ())
      ~store ()
  in
  drive_ops p.Primary.svc ~seed:51 ~rounds:300 ~range:64 ops;
  (* First snapshot: no base exists, so even `Delta falls back full. *)
  let f0, _ = Primary.snapshot_shard p ~shard:0 ~mode:`Delta () in
  Alcotest.(check bool) "first snapshot is a base" true
    (String.length f0 >= 4 && String.sub f0 0 4 = "snap");
  drive_ops p.Primary.svc ~seed:52 ~rounds:300 ~range:64 ops;
  (* Second snapshot: a base exists and tracking is on — a delta. *)
  let f1, s1 = Primary.snapshot_shard p ~shard:0 () in
  Alcotest.(check bool) "second snapshot is a delta" true
    (String.length f1 >= 5 && String.sub f1 0 5 = "delta");
  (* Nothing new committed: the tip is returned without a write. *)
  let f1', s1' = Primary.snapshot_shard p ~shard:0 () in
  Alcotest.(check string) "quiescent snapshot reuses the tip" f1 f1';
  Alcotest.(check int) "same stamp" s1 s1';
  drive_ops p.Primary.svc ~seed:53 ~rounds:300 ~range:64 ops;
  let f2, _ = Primary.snapshot_shard p ~shard:1 () in
  Alcotest.(check bool) "other shard chains independently" true
    (String.length f2 >= 4);
  (* `Full forces a compacting base and prunes the chain. *)
  drive_ops p.Primary.svc ~seed:54 ~rounds:100 ~range:64 ops;
  let f3, _ = Primary.snapshot_shard p ~shard:0 ~mode:`Full () in
  Alcotest.(check bool) "`Full publishes a base" true
    (String.sub f3 0 4 = "snap");
  drive_ops p.Primary.svc ~seed:55 ~rounds:200 ~range:64 ops;
  let _ = Primary.snapshot_shard p ~shard:0 () in
  let live = primary_state p in
  Primary.stop p;
  (* Reboot: chain bootstrap (base + deltas) + WAL tail replay must
     reproduce exactly the acked history. *)
  let p2, boot2 =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true (mk_cfg ())
      ~store ()
  in
  Alcotest.(check bool) "bootstrap used the chain" true
    (Array.fold_left ( + ) 0 boot2.Primary.b_snap_bindings > 0);
  let recovered = primary_state p2 in
  Primary.stop p2;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  Alcotest.(check (list (pair int int))) "live state = oracle" expected live;
  Alcotest.(check (list (pair int int)))
    "chain-recovered state = oracle" expected recovered

let test_primary_dirty_overflow_falls_back () =
  let store, _ = Store.Mem.create () in
  let p, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true
      ~dirty_cap:16 (mk_cfg ()) ~store ()
  in
  Fun.protect
    ~finally:(fun () -> Primary.stop p)
    (fun () ->
      let ops = ref [] in
      drive_ops p.Primary.svc ~seed:61 ~rounds:50 ~range:64 ops;
      let _ = Primary.snapshot_shard p ~shard:0 ~mode:`Full () in
      (* Overflow the tiny dirty set (cap 16 poisons past 8 keys). *)
      drive_ops p.Primary.svc ~seed:62 ~rounds:300 ~range:64 ops;
      let f, _ = Primary.snapshot_shard p ~shard:0 ~mode:`Delta () in
      Alcotest.(check bool)
        "overflowed tracker falls back to a base" true
        (String.sub f 0 4 = "snap"))

let test_adaptive_dirty_cap_absorbs_spike () =
  (* A write burst past the poison threshold degrades one snapshot to
     a full — and only one: the snapshot doubles the next set's cap
     from the observed overflow, so the same burst rate fits the next
     cycle.  Quiet cycles then decay the cap back down. *)
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true
      ~dirty_cap:16 (mk_cfg ()) ~store ()
  in
  Fun.protect
    ~finally:(fun () -> Primary.stop p)
    (fun () ->
      let cap_gauge () = List.assoc "rep_shard0_dirty_cap" (Primary.gauges p) in
      let put_on shard n =
        let k = ref 0 and sent = ref 0 in
        while !sent < n do
          if p.Primary.svc.Shard.shard_of_key !k = shard then begin
            let req = Codec.Put { key = !k; value = !k + 7000 + n } in
            let reply = Shard.call p.Primary.svc ~tid:0 req in
            ops := (req, reply) :: !ops;
            incr sent
          end;
          incr k
        done
      in
      (* A small base: 3 keys keep the cap at 16 through the full. *)
      put_on 0 3;
      ignore (Primary.snapshot_shard p ~shard:0 ~mode:`Full ());
      Alcotest.(check int) "cap starts at 16" 16 (cap_gauge ());
      (* Spike: 12 distinct keys poison a cap-16 set (threshold 8). *)
      put_on 0 12;
      let f1, _ = Primary.snapshot_shard p ~shard:0 ~mode:`Delta () in
      Alcotest.(check bool) "cycle 1 degraded to a full" true
        (String.sub f1 0 4 = "snap");
      Alcotest.(check int) "cap doubled after the overflow" 32 (cap_gauge ());
      (* The same burst rate no longer poisons: cycle 2 is a delta. *)
      put_on 0 12;
      let f2, _ = Primary.snapshot_shard p ~shard:0 ~mode:`Delta () in
      Alcotest.(check bool) "cycle 2 ships a delta" true
        (String.length f2 >= 5 && String.sub f2 0 5 = "delta");
      (* 12 keys are past a quarter of 32, so cycle 2 doubled again —
         the cap tracks the burst rate with headroom. *)
      Alcotest.(check int) "cap sized with headroom" 64 (cap_gauge ());
      (* Quiet cycles decay the cap back to the floor (1 write each so
         the snapshot actually publishes and re-sizes). *)
      put_on 0 1;
      ignore (Primary.snapshot_shard p ~shard:0 ());
      Alcotest.(check int) "quiet cycle halves the cap" 32 (cap_gauge ());
      put_on 0 1;
      ignore (Primary.snapshot_shard p ~shard:0 ());
      put_on 0 1;
      ignore (Primary.snapshot_shard p ~shard:0 ());
      Alcotest.(check int) "cap clamps at the floor" 16 (cap_gauge ());
      (* The degradation dance never costs correctness. *)
      let live = primary_state p in
      let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
      Alcotest.(check (list (pair int int))) "state = oracle" expected live)

let test_full_snapshot_failure_keeps_dirty () =
  (* A full snapshot that fails at traversal or publish must not eat
     the swapped-out dirty set: those keys are the only record of what
     the chain is missing, and the next delta must still ship them —
     otherwise chain + WAL replay silently loses the mutations the
     failed full would have covered. *)
  let mem, _ = Store.Mem.create () in
  let fail_writes = ref false in
  let store =
    {
      mem with
      Store.s_write =
        (fun name contents ->
          if !fail_writes then failwith "injected publish failure"
          else mem.Store.s_write name contents);
    }
  in
  let ops = ref [] in
  let p, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true (mk_cfg ())
      ~store ()
  in
  drive_ops p.Primary.svc ~seed:71 ~rounds:200 ~range:64 ops;
  for shard = 0 to 1 do
    ignore (Primary.snapshot_shard p ~shard ~mode:`Full ())
  done;
  (* Mutations the chain does not cover yet... *)
  drive_ops p.Primary.svc ~seed:72 ~rounds:200 ~range:64 ops;
  (* ...must survive a full snapshot that dies at publish. *)
  fail_writes := true;
  for shard = 0 to 1 do
    match Primary.snapshot_shard p ~shard ~mode:`Full () with
    | _ -> Alcotest.fail "injected failure did not surface"
    | exception Failure _ -> ()
  done;
  fail_writes := false;
  drive_ops p.Primary.svc ~seed:73 ~rounds:50 ~range:64 ops;
  (* Tracking was merged back, not poisoned: the next snapshot is a
     delta, and it carries the pre-failure write set. *)
  for shard = 0 to 1 do
    let f, _ = Primary.snapshot_shard p ~shard () in
    Alcotest.(check bool) "post-failure snapshot is a delta" true
      (String.length f >= 5 && String.sub f 0 5 = "delta")
  done;
  Primary.stop p;
  let p2, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true (mk_cfg ())
      ~store ()
  in
  let recovered = primary_state p2 in
  Primary.stop p2;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  Alcotest.(check (list (pair int int)))
    "chain after a failed full = acked history" expected recovered

let test_bootstrap_chain_bindings_not_dirty () =
  (* Chain bindings applied at boot are base state: recording them
     would make the first post-boot delta re-ship the whole base — or,
     with a small cap, instantly poison the set and degrade the first
     delta to a full.  Only WAL-tail replay belongs in the next
     delta. *)
  let store, _ = Store.Mem.create () in
  let ops = ref [] in
  let p, _ =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true
      ~dirty_cap:16 (mk_cfg ()) ~store ()
  in
  drive_ops p.Primary.svc ~seed:81 ~rounds:300 ~range:64 ops;
  for shard = 0 to 1 do
    ignore (Primary.snapshot_shard p ~shard ~mode:`Full ())
  done;
  Primary.stop p;
  (* Reboot: more than cap/2 live keys per shard would poison cap-16
     tracking if the chain bindings were recorded. *)
  let p2, boot =
    Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true
      ~dirty_cap:16 (mk_cfg ()) ~store ()
  in
  Alcotest.(check bool) "fixture restored a sizable base" true
    (Array.fold_left min max_int boot.Primary.b_snap_bindings > 8);
  List.iter
    (fun (k, v) ->
      if
        k = "rep_shard0_dirty_keys" || k = "rep_shard1_dirty_keys"
        || k = "rep_shard0_dirty_overflow"
        || k = "rep_shard1_dirty_overflow"
      then Alcotest.(check int) (k ^ " clean after boot") 0 v)
    (Primary.gauges p2);
  (* A few fresh writes per shard -> the next snapshot is a small
     delta, not a full fallback. *)
  let put_on shard n =
    let k = ref 0 and sent = ref 0 in
    while !sent < n do
      if p2.Primary.svc.Shard.shard_of_key !k = shard then begin
        let req = Codec.Put { key = !k; value = !k + 1000 } in
        let reply = Shard.call p2.Primary.svc ~tid:0 req in
        ops := (req, reply) :: !ops;
        incr sent
      end;
      incr k
    done
  in
  put_on 0 3;
  put_on 1 3;
  for shard = 0 to 1 do
    let f, _ = Primary.snapshot_shard p2 ~shard ~mode:`Delta () in
    Alcotest.(check bool) "first post-boot snapshot is a delta" true
      (String.length f >= 5 && String.sub f 0 5 = "delta")
  done;
  let live = primary_state p2 in
  Primary.stop p2;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  Alcotest.(check (list (pair int int))) "state = oracle" expected live

(* ------------------------------------------------------------------ *)
(* Mmap store: basics and seeded crash-exactness fuzz *)

let with_tmp_dir tag f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyrepro-%s-%d-%x" tag (Unix.getpid ())
         (Hashtbl.hash (Unix.gettimeofday ())))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_mmap_store_basics () =
  with_tmp_dir "mmap-basics" @@ fun dir ->
  let store = Store.mmap ~dir ~prealloc:64 () in
  (* Atomic publish + streaming read. *)
  store.Store.s_write "snap-a" "hello snapshot";
  Alcotest.(check string) "publish then read" "hello snapshot"
    (store.Store.s_read "snap-a");
  let read, close = store.Store.s_source "snap-a" in
  let buf = Bytes.create 5 in
  let n = read buf 0 5 in
  close ();
  Alcotest.(check string) "source streams" "hello" (Bytes.sub_string buf 0 n);
  (* Appends grow past prealloc and close trims to exact size. *)
  let w = store.Store.s_append "seg-1" in
  let chunk = String.make 50 'x' in
  for _ = 1 to 4 do
    w.Store.w_append chunk
  done;
  w.Store.w_sync ();
  (* Before close the on-disk file carries the preallocated tail... *)
  let raw = store.Store.s_read "seg-1" in
  Alcotest.(check bool) "prealloc tail visible before close" true
    (String.length raw >= 200);
  Alcotest.(check string) "synced prefix intact" (String.concat "" [ chunk; chunk; chunk; chunk ])
    (String.sub raw 0 200);
  w.Store.w_close ();
  (* ...and close trims rotated segments to exact length. *)
  Alcotest.(check int) "close trims to exact size" 200
    (String.length (store.Store.s_read "seg-1"));
  Alcotest.(check (list string)) "list sees both" [ "seg-1"; "snap-a" ]
    (List.sort compare (store.Store.s_list ()));
  store.Store.s_delete "seg-1";
  Alcotest.(check (list string)) "delete works" [ "snap-a" ]
    (store.Store.s_list ())

let test_mmap_wal_prealloc_tail () =
  (* A crash mid-segment leaves the mmap prealloc zero tail on disk;
     recovery must trim it as a torn tail, keeping every record. *)
  with_tmp_dir "mmap-tail" @@ fun dir ->
  let store = Store.mmap ~dir ~prealloc:4096 () in
  let w, _ = Wal.open_ ~store ~shard:0 () in
  append_run w 1 20;
  (* Abandon the writer without close: exactly what a crash leaves —
     the data is msync'd, the prealloc tail is still zeros. *)
  let store2 = Store.mmap ~dir ~prealloc:4096 () in
  let records, r = Wal.scan ~store:store2 ~shard:0 in
  Alcotest.(check int) "every committed record survives" 20 (List.length records);
  Alcotest.(check bool) "the zero tail was recognized as torn" true
    (r.Wal.r_truncated_bytes > 0);
  (* Recovery via open_ republishes a clean exact-size log. *)
  let w2, r2 = Wal.open_ ~store:store2 ~shard:0 () in
  Alcotest.(check int) "reopen keeps the records" 20 r2.Wal.r_records;
  append_run w2 21 25;
  Wal.close w2;
  let _, r3 = Wal.scan ~store:store2 ~shard:0 in
  Alcotest.(check int) "appendable after recovery" 25 r3.Wal.r_records;
  Alcotest.(check int) "clean rescan" 0 r3.Wal.r_truncated_bytes;
  Wal.close w

let test_mmap_rotated_zero_tail () =
  (* A rotated-but-untrimmed segment (crash between the last commit
     and the rotation's trim) reads as real frames + a zero tail in a
     non-final segment: the scan skips the zeros without a rewrite,
     and the cross-segment seq continuity check still guards real
     holes. *)
  with_tmp_dir "mmap-rot" @@ fun dir ->
  (* Build a multi-segment log in Mem, then lay it out on disk with a
     zero tail glued onto a non-final segment — the exact layout such
     a crash leaves on the mmap store. *)
  let mem, _ = Store.Mem.create () in
  let w, _ = Wal.open_ ~store:mem ~shard:0 ~segment_bytes:256 () in
  for run = 0 to 8 do
    append_run w ((run * 5) + 1) ((run + 1) * 5)
  done;
  Wal.close w;
  let segs =
    List.filter (fun n -> Filename.check_suffix n ".seg") (mem.Store.s_list ())
  in
  Alcotest.(check bool) "multi-segment fixture" true (List.length segs > 2);
  let disk = Store.fs ~dir in
  List.iteri
    (fun i name ->
      let data = mem.Store.s_read name in
      let data = if i = 1 then data ^ String.make 300 '\000' else data in
      disk.Store.s_write name data)
    segs;
  let store = Store.mmap ~dir ~prealloc:2048 () in
  let records, r = Wal.scan ~store ~shard:0 in
  Alcotest.(check int) "all records survive the untrimmed rotation" 45
    (List.length records);
  Alcotest.(check int) "skipped, not rewritten" 0 r.Wal.r_truncated_bytes;
  (* A real hole in acked history is still loud. *)
  store.Store.s_delete (List.nth segs 2);
  match Wal.scan ~store ~shard:0 with
  | _ -> Alcotest.fail "hole went unnoticed"
  | exception Wal.Corrupt _ -> ()

let test_mmap_crash_fuzz () =
  (* Seeded end-to-end crash fuzz on the mmap store: random ops,
     random delta/full snapshots (chain state on disk), a torn group
     commit, a kill, and a reboot — recovered state must equal the
     oracle replay of exactly the acked history, every seed. *)
  for seed = 0 to 3 do
    with_tmp_dir (Printf.sprintf "mmap-fuzz-%d" seed) @@ fun dir ->
    let store = Store.mmap ~dir ~prealloc:2048 () in
    let rng = Prims.Rng.create ~seed:(3000 + seed) in
    let ops = ref [] in
    let p, _ =
      Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true
        (mk_cfg ()) ~store ()
    in
    (* Interleave driving with snapshots so the chain grows: base,
       deltas, and sometimes a compacting full. *)
    for round = 0 to 4 do
      drive_ops p.Primary.svc
        ~seed:(4000 + (seed * 16) + round)
        ~rounds:(60 + Prims.Rng.below rng 60)
        ~range:48 ops;
      let shard = Prims.Rng.below rng 2 in
      let mode =
        match Prims.Rng.below rng 4 with 0 -> `Full | _ -> `Auto
      in
      ignore (Primary.snapshot_shard p ~shard ~mode ())
    done;
    drive_ops p.Primary.svc ~seed:(5000 + seed) ~rounds:100 ~range:48 ops;
    (* Torn commit on shard 0, then process death. *)
    Primary.arm_torn_commit p ~shard:0;
    let svc = p.Primary.svc in
    let submitted = ref 0 in
    let k = ref 10_000 in
    while !submitted < 8 do
      if svc.Shard.shard_of_key !k = 0 then begin
        incr submitted;
        svc.Shard.submit ~tid:1 (Codec.Put { key = !k; value = 1 }) (fun _ -> ())
      end;
      incr k
    done;
    let deadline = Unix.gettimeofday () +. 10.0 in
    while svc.Shard.consumer_alive 0 && Unix.gettimeofday () < deadline do
      Domain.cpu_relax ()
    done;
    Primary.kill p;
    (* Reboot mid-chain from the real directory. *)
    let store2 = Store.mmap ~dir ~prealloc:2048 () in
    let p2, _ =
      Primary.create ~structure:hashmap ~scheme:hyaline ~delta:true
        (mk_cfg ()) ~store:store2 ()
    in
    let recovered = primary_state p2 in
    Primary.stop p2;
    Primary.stop p;
    let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "seed %d: mmap recovery = acked history exactly" seed)
      expected recovered
  done

let suites =
  [
    ( "replica codec",
      [
        Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
        Alcotest.test_case "wal record roundtrip" `Quick
          test_wal_record_roundtrip;
        Alcotest.test_case "every bit flip detected" `Quick
          test_wal_record_detects_damage;
        Alcotest.test_case "mutation_of_exec table" `Quick test_mutation_of_exec;
        Alcotest.test_case "snapshot frames roundtrip" `Quick
          test_snap_frames_roundtrip;
        Alcotest.test_case "fold_frames reports torn tails" `Quick
          test_fold_frames_torn_tail;
      ] );
    ( "replica store",
      [
        Alcotest.test_case "mem crash semantics" `Quick test_mem_store_crash;
        Alcotest.test_case "fs append and atomic publish" `Quick test_fs_store;
        Alcotest.test_case "mmap append, trim, publish, source" `Quick
          test_mmap_store_basics;
      ] );
    ( "replica dirty",
      [
        Alcotest.test_case "basics + dedup" `Quick test_dirty_basics;
        Alcotest.test_case "seal handoff + cell retry" `Quick
          test_dirty_seal_handoff;
        Alcotest.test_case "overflow poison is sticky" `Quick
          test_dirty_overflow;
      ] );
    ( "replica wal",
      [
        Alcotest.test_case "group commit + reopen" `Quick test_wal_group_commit;
        Alcotest.test_case "rotation + truncation" `Quick
          test_wal_rotation_and_truncate;
        Alcotest.test_case "torn commit" `Quick test_wal_torn_commit;
        Alcotest.test_case "fuzz: tail damage truncates" `Quick
          test_wal_fuzz_tail_corruption;
        Alcotest.test_case "fuzz: mid-log damage is loud" `Quick
          test_wal_fuzz_midlog_corruption;
        Alcotest.test_case "missing segment is loud" `Quick
          test_wal_missing_segment;
        Alcotest.test_case "last-segment mid-rot is loud" `Quick
          test_wal_last_segment_midrot_is_loud;
      ] );
    ( "replica snapshot",
      [
        Alcotest.test_case "roundtrip + delete_older" `Quick
          test_snapshot_roundtrip;
        Alcotest.test_case "strict loader" `Quick test_snapshot_strict_loader;
        Alcotest.test_case "delta chain merge + compaction" `Quick
          test_snapshot_delta_chain;
        Alcotest.test_case "chain continuity violations are loud" `Quick
          test_snapshot_chain_violations;
        Alcotest.test_case "compaction-crash residue ignored" `Quick
          test_snapshot_chain_compaction_residue;
      ] );
    ( "replica service",
      [
        Alcotest.test_case "recovery = oracle replay" `Quick
          test_primary_recovery_cycle;
        Alcotest.test_case "torn commit acks nothing" `Quick
          test_torn_commit_acks_nothing;
        Alcotest.test_case "follower sync + promote" `Quick
          test_follower_sync_and_promote;
        Alcotest.test_case "follower drive exit paths" `Quick
          test_follower_drive_exit_paths;
        Alcotest.test_case "rep opcodes over a socket" `Quick
          test_rep_opcodes_over_socket;
        Alcotest.test_case "socket claim: stale vs live" `Quick
          test_socket_claim;
        Alcotest.test_case "delta snapshot cycle = oracle" `Quick
          test_primary_delta_snapshot_cycle;
        Alcotest.test_case "dirty overflow falls back to full" `Quick
          test_primary_dirty_overflow_falls_back;
        Alcotest.test_case "adaptive dirty cap absorbs a spike" `Quick
          test_adaptive_dirty_cap_absorbs_spike;
        Alcotest.test_case "failed full keeps the dirty set" `Quick
          test_full_snapshot_failure_keeps_dirty;
        Alcotest.test_case "boot chain bindings stay clean" `Quick
          test_bootstrap_chain_bindings_not_dirty;
      ] );
    ( "replica mmap",
      [
        Alcotest.test_case "prealloc zero tail trims" `Quick
          test_mmap_wal_prealloc_tail;
        Alcotest.test_case "rotated zero tail skipped, holes loud" `Quick
          test_mmap_rotated_zero_tail;
        Alcotest.test_case "seeded crash fuzz = acked history" `Quick
          test_mmap_crash_fuzz;
      ] );
  ]
