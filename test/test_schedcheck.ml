(* Tests for the deterministic interleaving checker and the exhaustive
   model checking of the simplified Hyaline algorithm. *)

open Schedcheck

(* ------------------------------------------------------------------ *)
(* Scheduler plumbing *)

let test_single_fiber () =
  let st =
    Sched.explore
      ~scenario:(fun () ->
        let c = Sched.Shared.make 0 in
        ( [ (fun () -> Sched.Shared.set c 41; Sched.Shared.set c 42) ],
          fun () -> assert (Sched.Shared.get c = 42) ))
      ()
  in
  Alcotest.(check bool) "exhausted" true st.Sched.exhausted;
  Alcotest.(check int) "single schedule" 1 st.Sched.schedules

let test_counter_race_found () =
  (* The classic lost update: two unsynchronized increments.  Some
     schedule must end with counter = 1; exploration finds it. *)
  let lost = ref false in
  let st =
    Sched.explore
      ~scenario:(fun () ->
        let c = Sched.Shared.make 0 in
        let incr () =
          let v = Sched.Shared.get c in
          Sched.Shared.set c (v + 1)
        in
        ( [ incr; incr ],
          fun () -> if Sched.Shared.get c = 1 then lost := true ))
      ()
  in
  Alcotest.(check bool) "exhausted" true st.Sched.exhausted;
  Alcotest.(check bool) "lost update found" true !lost;
  Alcotest.(check bool) "several schedules" true (st.Sched.schedules > 1)

let test_cas_race_safe () =
  (* CAS-based increments never lose updates, under every schedule. *)
  let st =
    Sched.explore
      ~scenario:(fun () ->
        let c = Sched.Shared.make 0 in
        let incr () = ignore (Sched.Shared.fetch_and_add c 1) in
        ([ incr; incr; incr ], fun () -> assert (Sched.Shared.get c = 3)))
      ()
  in
  Alcotest.(check bool) "exhausted" true st.Sched.exhausted

let test_deterministic_replay () =
  (* Same scenario twice: identical schedule counts. *)
  let scenario () =
    let c = Sched.Shared.make 0 in
    let f () = ignore (Sched.Shared.fetch_and_add c 1) in
    ([ f; f ], fun () -> ())
  in
  let a = Sched.explore ~scenario () and b = Sched.explore ~scenario () in
  Alcotest.(check int) "same count" a.Sched.schedules b.Sched.schedules

let test_budget () =
  let st =
    Sched.explore ~max_schedules:5
      ~scenario:(fun () ->
        let c = Sched.Shared.make 0 in
        let f () =
          for _ = 1 to 4 do
            ignore (Sched.Shared.fetch_and_add c 1)
          done
        in
        ([ f; f; f ], fun () -> ()))
      ()
  in
  Alcotest.(check bool) "budget hit" false st.Sched.exhausted;
  Alcotest.(check int) "stopped at budget" 5 st.Sched.schedules

(* ------------------------------------------------------------------ *)
(* Exhaustive model checking of simplified Hyaline (§3.1). *)

let retire_one_scenario () =
  let t = Hyaline_model.create () in
  let n1 = Hyaline_model.make_node t "n1" in
  let t1 () =
    let h = Hyaline_model.enter t in
    Hyaline_model.retire t n1;
    Hyaline_model.leave t h
  in
  let t2 () =
    let h = Hyaline_model.enter t in
    Hyaline_model.leave t h
  in
  ([ t1; t2 ], fun () -> Hyaline_model.check_quiescent t)

let test_model_retire_vs_reader () =
  let st = Sched.explore ~max_schedules:2_000_000 ~scenario:retire_one_scenario () in
  Alcotest.(check bool)
    (Printf.sprintf "exhausted after %d schedules" st.Sched.schedules)
    true st.Sched.exhausted

let two_retirers_scenario () =
  let t = Hyaline_model.create () in
  let n1 = Hyaline_model.make_node t "n1" in
  let n2 = Hyaline_model.make_node t "n2" in
  let retirer n () =
    let h = Hyaline_model.enter t in
    Hyaline_model.retire t n;
    Hyaline_model.leave t h
  in
  ( [ retirer n1; retirer n2 ],
    fun () -> Hyaline_model.check_quiescent t )

let test_model_two_retirers () =
  (* The two-retirer tree outgrows an affordable exhaustive budget;
     what matters is that no schedule in a deep systematic prefix of
     it violates safety (every check ran without raising). *)
  let budget = 400_000 in
  let st =
    Sched.explore ~max_schedules:budget ~scenario:two_retirers_scenario ()
  in
  Alcotest.(check int) "explored the full budget violation-free" budget
    st.Sched.schedules

(* The full Figure 2a cast — three threads, two retirements, one pure
   reader — is too large to enumerate, so it gets a deep seeded random
   sweep instead. *)
let figure2a_scenario () =
  let t = Hyaline_model.create () in
  let n1 = Hyaline_model.make_node t "n1" in
  let n2 = Hyaline_model.make_node t "n2" in
  let retirer n () =
    let h = Hyaline_model.enter t in
    Hyaline_model.retire t n;
    Hyaline_model.leave t h
  in
  let reader () =
    let h = Hyaline_model.enter t in
    Hyaline_model.leave t h
  in
  ( [ retirer n1; retirer n2; reader ],
    fun () -> Hyaline_model.check_quiescent t )

let test_model_figure2a_sampled () =
  let st =
    Sched.sample ~seed:7 ~runs:30_000 ~scenario:figure2a_scenario ()
  in
  Alcotest.(check bool) "ran" true (st.Sched.schedules = 30_000)

(* Nested brackets on one fiber + a concurrent retirer. *)
let test_model_reentrant_reader_sampled () =
  let scenario () =
    let t = Hyaline_model.create () in
    let ns = List.init 3 (fun i -> Hyaline_model.make_node t (Printf.sprintf "n%d" i)) in
    let retirer () =
      List.iter
        (fun n ->
          let h = Hyaline_model.enter t in
          Hyaline_model.retire t n;
          Hyaline_model.leave t h)
        ns
    in
    let reader () =
      for _ = 1 to 3 do
        let h = Hyaline_model.enter t in
        Hyaline_model.leave t h
      done
    in
    ([ retirer; reader ], fun () -> Hyaline_model.check_quiescent t)
  in
  let st = Sched.sample ~seed:13 ~runs:20_000 ~scenario () in
  Alcotest.(check bool) "ran" true (st.Sched.schedules = 20_000)

(* Negative control: the checker must catch an actual unsafe free. *)
let test_model_detects_unsafe_free () =
  let scenario () =
    let t = Hyaline_model.create () in
    let n = Hyaline_model.make_node t "victim" in
    let victim_reader () =
      let h = Hyaline_model.enter t in
      Hyaline_model.retire t n;
      Hyaline_model.leave t h
    in
    let saboteur () = Hyaline_model.unsafe_free n in
    ([ victim_reader; saboteur ], fun () -> ())
  in
  match Sched.explore ~max_schedules:100_000 ~scenario () with
  | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "violation reported: %s" msg)
        true
        (String.length msg > 0)
  | _ -> Alcotest.fail "unsafe free went unnoticed by the checker"

let suites =
  [
    ( "schedcheck.sched",
      [
        Alcotest.test_case "single fiber" `Quick test_single_fiber;
        Alcotest.test_case "lost update found" `Quick test_counter_race_found;
        Alcotest.test_case "cas increments safe" `Quick test_cas_race_safe;
        Alcotest.test_case "deterministic replay" `Quick
          test_deterministic_replay;
        Alcotest.test_case "budget respected" `Quick test_budget;
      ] );
    ( "schedcheck.hyaline-model",
      [
        Alcotest.test_case "retirer vs reader (exhaustive)" `Slow
          test_model_retire_vs_reader;
        Alcotest.test_case "two retirers (exhaustive)" `Slow
          test_model_two_retirers;
        Alcotest.test_case "figure-2a cast (30k random schedules)" `Slow
          test_model_figure2a_sampled;
        Alcotest.test_case "repeated brackets (20k random schedules)" `Slow
          test_model_reentrant_reader_sampled;
        Alcotest.test_case "unsafe free is caught" `Quick
          test_model_detects_unsafe_free;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Model checking the REAL implementation: the production multi-slot
   Hyaline (batches, Adjs arithmetic, predecessor adjustments, detach,
   traverse) instantiated over the scheduler-backed Head, with the
   pool-recycling use-after-free detector armed. *)

module Real = Hyaline_core.Hyaline.Make (Head_sched)
module Real_s = Hyaline_core.Hyaline_s.Make (Head_sched)

(* The packed single-word backend under the scheduler.  Its schedule
   tree differs from dwcas (enter is one FAA step, not a CAS loop), so
   no schedule-count equality is asserted — only that every explored
   or sampled schedule ends fully reclaimed, violation-free. *)
module Real_packed = Hyaline_core.Hyaline.Make (Head_sched_packed)
module Real_s_packed = Hyaline_core.Hyaline_s.Make (Head_sched_packed)

let real_cfg nthreads =
  {
    Smr.Config.default with
    Smr.Config.nthreads;
    slots = 2;
    batch_min = 2; (* batch size = max(2, k+1) = 3 nodes *)
    epoch_freq = 2;
    check_uaf = true;
  }

let real_scenario (module T : Smr.Tracker.S) ~fibers ~retires () =
  let cfg = real_cfg fibers in
  let t = T.create cfg in
  let pool = Test_support.Pool.create ~local_cache:0 () in
  let fiber tid () =
    for _ = 1 to retires do
      T.enter t ~tid;
      let b = Test_support.Pool.alloc pool in
      b.Test_support.Blk.hdr.Smr.Hdr.free_hook <-
        (fun () -> Test_support.Pool.free pool b);
      T.alloc_hook t ~tid b.Test_support.Blk.hdr;
      T.retire t ~tid b.Test_support.Blk.hdr;
      T.leave t ~tid
    done
  in
  let check () =
    for tid = 0 to fibers - 1 do
      T.flush t ~tid
    done;
    let s = Smr.Stats.snapshot (T.stats t) in
    if s.Smr.Stats.retires <> s.Smr.Stats.frees then
      failwith
        (Printf.sprintf "%s: quiescent leak: retired %d, freed %d" T.name
           s.Smr.Stats.retires s.Smr.Stats.frees);
    if Test_support.Pool.live pool <> 0 then
      failwith (T.name ^ ": pool not empty at quiescence")
  in
  (List.init fibers (fun tid -> fiber tid), check)

let test_real_hyaline_systematic () =
  (* Deep systematic prefix of the schedule tree of two fibers running
     the real tracker; every schedule must end fully reclaimed with no
     lifecycle violation. *)
  let budget = 40_000 in
  let st =
    Sched.explore ~max_schedules:budget
      ~scenario:(real_scenario (module Real) ~fibers:2 ~retires:3)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored %d schedules violation-free (max depth %d)"
       st.Sched.schedules st.Sched.max_depth)
    true
    (st.Sched.schedules > 0)

let test_real_hyaline_sampled_3fibers () =
  let st =
    Sched.sample ~seed:11 ~runs:2_500
      ~scenario:(real_scenario (module Real) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_500 st.Sched.schedules

let test_real_hyaline_s_sampled () =
  let st =
    Sched.sample ~seed:23 ~runs:2_000
      ~scenario:(real_scenario (module Real_s) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_000 st.Sched.schedules

let test_real_packed_systematic () =
  let budget = 40_000 in
  let st =
    Sched.explore ~max_schedules:budget
      ~scenario:(real_scenario (module Real_packed) ~fibers:2 ~retires:3)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored %d schedules violation-free (max depth %d)"
       st.Sched.schedules st.Sched.max_depth)
    true
    (st.Sched.schedules > 0)

let test_real_packed_sampled_3fibers () =
  let st =
    Sched.sample ~seed:11 ~runs:2_500
      ~scenario:(real_scenario (module Real_packed) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_500 st.Sched.schedules

let test_real_s_packed_sampled () =
  let st =
    Sched.sample ~seed:23 ~runs:2_000
      ~scenario:(real_scenario (module Real_s_packed) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_000 st.Sched.schedules

(* Crystalline over scheduler-backed reservation words: the same
   quiescent-leak/lifecycle oracle, exercising the era-raise CAS vs
   insert race and the exchange-detach vs insert race — on both word
   representations (the packed one adds the value-CAS/tombstone
   surface). *)
module Real_crystalline = Hyaline_core.Crystalline.Make (Crystalline_sched.Boxed)
module Real_crystalline_packed =
  Hyaline_core.Crystalline.Make (Crystalline_sched.Packed)

let test_real_crystalline_systematic () =
  let budget = 40_000 in
  let st =
    Sched.explore ~max_schedules:budget
      ~scenario:(real_scenario (module Real_crystalline) ~fibers:2 ~retires:3)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "explored %d schedules violation-free (max depth %d)"
       st.Sched.schedules st.Sched.max_depth)
    true
    (st.Sched.schedules > 0)

let test_real_crystalline_sampled_3fibers () =
  let st =
    Sched.sample ~seed:17 ~runs:2_500
      ~scenario:(real_scenario (module Real_crystalline) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_500 st.Sched.schedules

let test_real_crystalline_packed_sampled () =
  let st =
    Sched.sample ~seed:19 ~runs:2_000
      ~scenario:
        (real_scenario (module Real_crystalline_packed) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_000 st.Sched.schedules

(* Interleave brackets with trim under the scheduler. *)
let real_trim_scenario () =
  let cfg = real_cfg 2 in
  let t = Real.create cfg in
  let pool = Test_support.Pool.create ~local_cache:0 () in
  let retiring tid () =
    Real.enter t ~tid;
    for _ = 1 to 4 do
      let b = Test_support.Pool.alloc pool in
      b.Test_support.Blk.hdr.Smr.Hdr.free_hook <-
        (fun () -> Test_support.Pool.free pool b);
      Real.alloc_hook t ~tid b.Test_support.Blk.hdr;
      Real.retire t ~tid b.Test_support.Blk.hdr;
      Real.trim t ~tid
    done;
    Real.leave t ~tid
  in
  let check () =
    for tid = 0 to 1 do
      Real.flush t ~tid
    done;
    let s = Smr.Stats.snapshot (Real.stats t) in
    if s.Smr.Stats.retires <> s.Smr.Stats.frees then
      failwith "trim scenario: quiescent leak";
    if Test_support.Pool.live pool <> 0 then
      failwith "trim scenario: pool not empty"
  in
  ([ retiring 0; retiring 1 ], check)

let test_real_trim_sampled () =
  let st = Sched.sample ~seed:31 ~runs:2_500 ~scenario:real_trim_scenario () in
  Alcotest.(check int) "ran" 2_500 st.Sched.schedules

let real_suites =
  [
    ( "schedcheck.real-implementation",
      [
        Alcotest.test_case "Hyaline 2 fibers (systematic)" `Slow
          test_real_hyaline_systematic;
        Alcotest.test_case "Hyaline 3 fibers (2.5k random schedules)" `Slow
          test_real_hyaline_sampled_3fibers;
        Alcotest.test_case "Hyaline-S 3 fibers (2k random schedules)" `Slow
          test_real_hyaline_s_sampled;
        Alcotest.test_case "Hyaline trim chains (2.5k random schedules)" `Slow
          test_real_trim_sampled;
        Alcotest.test_case "Hyaline(packed) 2 fibers (systematic)" `Slow
          test_real_packed_systematic;
        Alcotest.test_case "Hyaline(packed) 3 fibers (2.5k random schedules)"
          `Slow test_real_packed_sampled_3fibers;
        Alcotest.test_case "Hyaline-S(packed) 3 fibers (2k random schedules)"
          `Slow test_real_s_packed_sampled;
        Alcotest.test_case "Crystalline 2 fibers (systematic)" `Slow
          test_real_crystalline_systematic;
        Alcotest.test_case "Crystalline 3 fibers (2.5k random schedules)"
          `Slow test_real_crystalline_sampled_3fibers;
        Alcotest.test_case "Crystalline(packed) 3 fibers (2k random schedules)"
          `Slow test_real_crystalline_packed_sampled;
      ] );
  ]

let suites = suites @ real_suites

(* ------------------------------------------------------------------ *)
(* PCT scheduler *)

let test_pct_finds_lost_update () =
  (* The unsynchronized-increment race has depth 2; PCT must find the
     lost update within few runs. *)
  let lost = ref false in
  let scenario () =
    let c = Sched.Shared.make 0 in
    let incr () =
      let v = Sched.Shared.get c in
      Sched.Shared.set c (v + 1)
    in
    ([ incr; incr ], fun () -> if Sched.Shared.get c = 1 then lost := true)
  in
  ignore (Sched.pct ~seed:3 ~runs:200 ~depth:2 ~scenario ());
  Alcotest.(check bool) "pct found the lost update" true !lost

let test_pct_real_hyaline () =
  let st =
    Sched.pct ~seed:41 ~runs:2_000 ~depth:3
      ~scenario:(real_scenario (module Real) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 2_000 st.Sched.schedules

let test_pct_real_hyaline_s () =
  let st =
    Sched.pct ~seed:43 ~runs:1_500 ~depth:3
      ~scenario:(real_scenario (module Real_s) ~fibers:3 ~retires:4)
      ()
  in
  Alcotest.(check int) "ran" 1_500 st.Sched.schedules

let pct_suite =
  ( "schedcheck.pct",
    [
      Alcotest.test_case "finds lost update" `Quick test_pct_finds_lost_update;
      Alcotest.test_case "Hyaline under PCT (2k runs, depth 3)" `Slow
        test_pct_real_hyaline;
      Alcotest.test_case "Hyaline-S under PCT (1.5k runs, depth 3)" `Slow
        test_pct_real_hyaline_s;
    ] )

let suites = suites @ [ pct_suite ]
