let () =
  Alcotest.run "hyaline-repro"
    (List.concat
       [
         Test_prims.suites;
         Test_mpool.suites;
         Test_obs.suites;
         Test_smr.suites;
         Test_hyaline.suites;
         Test_dstruct.suites;
         Test_schedcheck.suites;
         Test_workload.suites;
         Test_plot.suites;
         Test_lincheck.suites;
         Test_queue.suites;
         Test_lfrc.suites;
         Test_service.suites;
         Test_shm.suites;
         Test_shmalloc.suites;
         Test_replica.suites;
         Test_cluster.suites;
         Test_chaos.suites;
       ])
