(* Linearizability: checker unit tests (accepting and rejecting
   hand-crafted histories), a property that sequential histories are
   always accepted, and live checks of every benchmark structure under
   real concurrency. *)

open Lincheck

let qcheck = QCheck_alcotest.to_alcotest

let ev tid op result inv res = { History.tid; op; result; inv; res }

(* ------------------------------------------------------------------ *)
(* Checker on crafted histories *)

let test_empty_history () =
  Alcotest.(check bool) "empty ok" true (History.check [])

let test_sequential_history () =
  let evs =
    [
      ev 0 (History.Insert (1, 10)) (History.Bool true) 0 1;
      ev 0 (History.Get 1) (History.Opt (Some 10)) 2 3;
      ev 0 (History.Remove 1) (History.Bool true) 4 5;
      ev 0 (History.Get 1) (History.Opt None) 6 7;
    ]
  in
  Alcotest.(check bool) "sequential accepted" true (History.check evs)

let test_overlapping_linearizable () =
  (* Two overlapping inserts of the same key: exactly one succeeds —
     linearizable in either order. *)
  let evs =
    [
      ev 0 (History.Insert (5, 1)) (History.Bool true) 0 3;
      ev 1 (History.Insert (5, 2)) (History.Bool false) 1 2;
    ]
  in
  Alcotest.(check bool) "one wins" true (History.check evs)

let test_stale_read_rejected () =
  (* get(1) invoked strictly after insert(1) responded must see it. *)
  let evs =
    [
      ev 0 (History.Insert (1, 10)) (History.Bool true) 0 1;
      ev 1 (History.Get 1) (History.Opt None) 2 3;
    ]
  in
  Alcotest.(check bool) "stale read rejected" false (History.check evs)

let test_double_success_rejected () =
  (* Non-overlapping inserts of one key cannot both succeed. *)
  let evs =
    [
      ev 0 (History.Insert (7, 1)) (History.Bool true) 0 1;
      ev 1 (History.Insert (7, 2)) (History.Bool true) 2 3;
    ]
  in
  Alcotest.(check bool) "double insert rejected" false (History.check evs)

let test_phantom_remove_rejected () =
  let evs = [ ev 0 (History.Remove 3) (History.Bool true) 0 1 ] in
  Alcotest.(check bool) "remove from empty rejected" false (History.check evs)

let test_put_value_visibility () =
  (* Overlapping put and get: get may see either old or new value, but
     a get after both puts responded must see the latest. *)
  let ok =
    [
      ev 0 (History.Put (1, 10)) (History.Bool true) 0 1;
      ev 0 (History.Put (1, 20)) (History.Bool false) 2 3;
      ev 1 (History.Get 1) (History.Opt (Some 20)) 4 5;
    ]
  in
  Alcotest.(check bool) "latest value" true (History.check ok);
  let bad =
    [
      ev 0 (History.Put (1, 10)) (History.Bool true) 0 1;
      ev 0 (History.Put (1, 20)) (History.Bool false) 2 3;
      ev 1 (History.Get 1) (History.Opt (Some 10)) 4 5;
    ]
  in
  Alcotest.(check bool) "old value after new put rejected" false
    (History.check bad)

let test_concurrent_get_ambiguity_accepted () =
  (* A get overlapping an insert may or may not see it. *)
  let sees =
    [
      ev 0 (History.Insert (1, 9)) (History.Bool true) 0 3;
      ev 1 (History.Get 1) (History.Opt (Some 9)) 1 2;
    ]
  in
  let misses =
    [
      ev 0 (History.Insert (1, 9)) (History.Bool true) 0 3;
      ev 1 (History.Get 1) (History.Opt None) 1 2;
    ]
  in
  Alcotest.(check bool) "sees" true (History.check sees);
  Alcotest.(check bool) "misses" true (History.check misses)

let test_too_long_rejected () =
  let evs =
    List.init 63 (fun i -> ev 0 (History.Get 0) (History.Opt None) (2 * i) ((2 * i) + 1))
  in
  match History.check evs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "63-event history should be refused"

(* Any genuinely sequential random history replayed through the spec
   must be accepted. *)
let prop_sequential_always_ok =
  QCheck.Test.make ~name:"sequential histories linearizable" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (pair (int_range 0 3) (int_range 0 5)))
    (fun script ->
      let module IntMap = Map.Make (Int) in
      let state = ref IntMap.empty in
      let time = ref 0 in
      let evs =
        List.map
          (fun (opc, k) ->
            let op =
              match opc with
              | 0 -> History.Insert (k, k * 7)
              | 1 -> History.Remove k
              | 2 -> History.Get k
              | _ -> History.Put (k, k * 13)
            in
            let result =
              match op with
              | History.Insert (k, v) ->
                  if IntMap.mem k !state then History.Bool false
                  else begin
                    state := IntMap.add k v !state;
                    History.Bool true
                  end
              | History.Remove k ->
                  if IntMap.mem k !state then begin
                    state := IntMap.remove k !state;
                    History.Bool true
                  end
                  else History.Bool false
              | History.Get k -> History.Opt (IntMap.find_opt k !state)
              | History.Put (k, v) ->
                  let fresh = not (IntMap.mem k !state) in
                  state := IntMap.add k v !state;
                  History.Bool fresh
            in
            let inv = !time in
            let res = !time + 1 in
            time := !time + 2;
            ev 0 op result inv res)
          script
      in
      History.check evs)

(* ------------------------------------------------------------------ *)
(* Live structures under real concurrency. *)

let live_cfg =
  { Smr.Config.default with nthreads = 3; slots = 2; batch_min = 4; check_uaf = true }

let live_check name (module M : Dstruct.Map_intf.S) () =
  (* Tiny key range to force contention; several seeds. *)
  for seed = 1 to 8 do
    let evs =
      Run.run_map (module M) ~cfg:live_cfg ~threads:3 ~ops_per_thread:12
        ~key_range:3 ~seed
    in
    Alcotest.(check int)
      (Printf.sprintf "%s seed %d: all ops recorded" name seed)
      36 (List.length evs);
    History.check_exn evs
  done

module Hashmap_hyaline = Dstruct.Hash_map.Make (Hyaline_core.Hyaline)
module Hashmap_hyaline_packed = Dstruct.Hash_map.Make (Hyaline_core.Hyaline.Packed)
module Hashmap_hp = Dstruct.Hash_map.Make (Smr.Hp)
module List_hyaline_s = Dstruct.Harris_list.Make (Hyaline_core.Hyaline_s)
module List_ebr = Dstruct.Harris_list.Make (Smr.Ebr)
module Bonsai_hyaline = Dstruct.Bonsai.Make (Hyaline_core.Hyaline)
module Bonsai_ibr = Dstruct.Bonsai.Make (Smr.Ibr)
module Nm_hyaline1s = Dstruct.Nm_tree.Make (Hyaline_core.Hyaline1s)
module Nm_he = Dstruct.Nm_tree.Make (Smr.He)
module Hashmap_crystalline = Dstruct.Hash_map.Make (Hyaline_core.Crystalline)
module List_crystalline_packed =
  Dstruct.Harris_list.Make (Hyaline_core.Crystalline.Packed)

let suites =
  [
    ( "lincheck.checker",
      [
        Alcotest.test_case "empty" `Quick test_empty_history;
        Alcotest.test_case "sequential" `Quick test_sequential_history;
        Alcotest.test_case "overlapping inserts" `Quick
          test_overlapping_linearizable;
        Alcotest.test_case "stale read rejected" `Quick
          test_stale_read_rejected;
        Alcotest.test_case "double insert rejected" `Quick
          test_double_success_rejected;
        Alcotest.test_case "phantom remove rejected" `Quick
          test_phantom_remove_rejected;
        Alcotest.test_case "put value visibility" `Quick
          test_put_value_visibility;
        Alcotest.test_case "concurrent get ambiguity" `Quick
          test_concurrent_get_ambiguity_accepted;
        Alcotest.test_case "length cap" `Quick test_too_long_rejected;
        qcheck prop_sequential_always_ok;
      ] );
    ( "lincheck.live",
      [
        Alcotest.test_case "hashmap/Hyaline" `Slow
          (live_check "hashmap/Hyaline" (module Hashmap_hyaline));
        Alcotest.test_case "hashmap/Hyaline(packed)" `Slow
          (live_check "hashmap/Hyaline(packed)" (module Hashmap_hyaline_packed));
        Alcotest.test_case "hashmap/HP" `Slow
          (live_check "hashmap/HP" (module Hashmap_hp));
        Alcotest.test_case "list/Hyaline-S" `Slow
          (live_check "list/Hyaline-S" (module List_hyaline_s));
        Alcotest.test_case "list/Epoch" `Slow
          (live_check "list/Epoch" (module List_ebr));
        Alcotest.test_case "bonsai/Hyaline" `Slow
          (live_check "bonsai/Hyaline" (module Bonsai_hyaline));
        Alcotest.test_case "bonsai/IBR" `Slow
          (live_check "bonsai/IBR" (module Bonsai_ibr));
        Alcotest.test_case "nmtree/Hyaline-1S" `Slow
          (live_check "nmtree/Hyaline-1S" (module Nm_hyaline1s));
        Alcotest.test_case "nmtree/HE" `Slow
          (live_check "nmtree/HE" (module Nm_he));
        Alcotest.test_case "hashmap/Crystalline" `Slow
          (live_check "hashmap/Crystalline" (module Hashmap_crystalline));
        Alcotest.test_case "list/Crystalline(packed)" `Slow
          (live_check "list/Crystalline(packed)"
             (module List_crystalline_packed));
      ] );
  ]
