(* kvd — the sharded lock-free KV daemon over a Unix socket.

   The serving stack is lib/service end to end: length-prefixed frames
   (Codec) -> per-connection handler domain with a leased client tid
   (Conn) -> hash-sharded mailboxes drained in batched SMR brackets
   (Shard) over the scheme/structure pair picked on the command line.

   `kvd --selftest` runs no socket at all: it drives the same stack
   through the in-process loopback (every opcode round-trips, then a
   short deterministic load burst) and exits nonzero on any failure —
   the CI smoke test. *)

let exercise_opcodes svc =
  let tid = 0 in
  let call = Service.Conn.Loopback.call in
  let conn = Service.Conn.Loopback.connect svc ~tid in
  let expect what expected got =
    if got <> expected then
      failwith
        (Printf.sprintf "%s: expected %s, got %s" what
           (Service.Codec.reply_to_string expected)
           (Service.Codec.reply_to_string got))
  in
  expect "get missing" Service.Codec.Not_found (call conn (Service.Codec.Get 1));
  expect "put fresh" Service.Codec.Created
    (call conn (Service.Codec.Put { key = 1; value = 10 }));
  expect "get present" (Service.Codec.Value 10) (call conn (Service.Codec.Get 1));
  expect "put overwrite" Service.Codec.Updated
    (call conn (Service.Codec.Put { key = 1; value = 11 }));
  expect "cas mismatch" Service.Codec.Cas_fail
    (call conn (Service.Codec.Cas { key = 1; expected = 10; desired = 99 }));
  expect "cas match" Service.Codec.Cas_ok
    (call conn (Service.Codec.Cas { key = 1; expected = 11; desired = 12 }));
  expect "get after cas" (Service.Codec.Value 12)
    (call conn (Service.Codec.Get 1));
  expect "del present" Service.Codec.Deleted (call conn (Service.Codec.Del 1));
  expect "del missing" Service.Codec.Not_found (call conn (Service.Codec.Del 1));
  expect "cas missing" Service.Codec.Not_found
    (call conn (Service.Codec.Cas { key = 1; expected = 0; desired = 0 }))

let selftest ~scheme ~structure ~shards ~clients ~duration =
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure structure)
      ~scheme:(Workload.Registry.find_scheme scheme)
      { Service.Shard.default_config with Service.Shard.shards; clients }
  in
  Fun.protect
    ~finally:(fun () -> svc.Service.Shard.stop ())
    (fun () ->
      exercise_opcodes svc;
      let res =
        Service.Loadgen.run svc ~mode:Service.Loadgen.Closed ~clients ~duration
          ~dist:(Workload.Keydist.uniform ~range:4096)
          ~mix:Service.Loadgen.read_mostly ~seed:7 ()
      in
      if res.Service.Loadgen.ops = 0 then failwith "selftest: no ops completed";
      if res.Service.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "selftest: %d error replies"
             res.Service.Loadgen.errors);
      Printf.printf
        "selftest ok: %s/%s, %d shards — opcodes round-tripped, %d ops in \
         %.2fs (%.0f ops/s), %s\n"
        svc.Service.Shard.scheme_name svc.Service.Shard.structure_name shards
        res.Service.Loadgen.ops res.Service.Loadgen.wall
        res.Service.Loadgen.throughput
        (Service.Slo.report svc.Service.Shard.slo))

let daemon ~socket ~scheme ~structure ~shards ~clients ~mailbox_cap ~batch =
  (* A client vanishing mid-reply must cost its connection, not the
     daemon: EPIPE on that fd instead of process death. *)
  Service.Conn.ignore_sigpipe ();
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure structure)
      ~scheme:(Workload.Registry.find_scheme scheme)
      {
        Service.Shard.default_config with
        Service.Shard.shards;
        clients;
        mailbox_capacity = mailbox_cap;
        batch;
      }
  in
  let server = Service.Conn.serve_unix svc ~path:socket () in
  Printf.printf "kvd: serving %s/%s with %d shards, %d client slots on %s\n%!"
    svc.Service.Shard.scheme_name svc.Service.Shard.structure_name shards
    clients socket;
  let stop _ =
    (* Runs on the main thread via the signal handler: tear down the
       listener, then the service (queued requests get Error replies). *)
    Printf.printf "kvd: shutting down (%d processed, %d shed, %s)\n%!"
      (svc.Service.Shard.processed ())
      (svc.Service.Shard.sheds ())
      (Service.Slo.report svc.Service.Shard.slo);
    Service.Conn.shutdown server;
    svc.Service.Shard.stop ();
    exit 0
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  while true do
    Unix.sleepf 3600.0
  done

let main socket scheme structure shards clients mailbox_cap batch selftest_flag
    duration =
  if selftest_flag then
    match
      selftest ~scheme ~structure ~shards ~clients ~duration
    with
    | () -> 0
    | exception e ->
        Printf.eprintf "kvd selftest FAILED: %s\n" (Printexc.to_string e);
        1
  else begin
    daemon ~socket ~scheme ~structure ~shards ~clients ~mailbox_cap ~batch;
    0
  end

open Cmdliner

let socket =
  Arg.(
    value & opt string "/tmp/kvd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket path to listen on.")

let scheme =
  Arg.(
    value & opt string "hyaline"
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Reclamation scheme for maps and mailboxes (leaky, ebr, hp, he, \
           ibr, hyaline, hyaline1s, hyalines, ...).")

let structure =
  Arg.(
    value & opt string "hashmap"
    & info [ "ds" ] ~docv:"STRUCTURE"
        ~doc:"Backing map: list, hashmap, bonsai, or nmtree.")

let shards =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"Partitions / consumer domains.")

let clients =
  Arg.(
    value & opt int 8
    & info [ "clients" ] ~docv:"N"
        ~doc:"Client tid slots = max concurrent connections.")

let mailbox_cap =
  Arg.(
    value & opt int 256
    & info [ "mailbox-cap" ] ~docv:"N"
        ~doc:"Per-shard mailbox bound; a full mailbox sheds.")

let batch =
  Arg.(
    value & opt int 64
    & info [ "batch" ] ~docv:"N"
        ~doc:"Max requests executed per enter/leave bracket.")

let selftest_flag =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Run the in-process loopback smoke test (every opcode plus a \
           short closed-loop burst) instead of serving; exit 1 on failure.")

let duration =
  Arg.(
    value & opt float 0.3
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:"Load-burst length for --selftest.")

let cmd =
  let doc = "Sharded lock-free KV daemon (lib/service over lib/smr)." in
  Cmd.v (Cmd.info "kvd" ~doc)
    Term.(
      const main $ socket $ scheme $ structure $ shards $ clients
      $ mailbox_cap $ batch $ selftest_flag $ duration)

let () = exit (Cmd.eval' cmd)
