(* kvd — the sharded lock-free KV daemon over a Unix socket.

   The serving stack is lib/service end to end: length-prefixed frames
   (Codec) -> per-connection handler domain with a leased client tid
   (Conn) -> hash-sharded mailboxes drained in batched SMR brackets
   (Shard) over the scheme/structure pair picked on the command line.

   `kvd --selftest` runs no socket at all: it drives the same stack
   through the in-process loopback (every opcode round-trips, then a
   short deterministic load burst) and exits nonzero on any failure —
   the CI smoke test. *)

let exercise_opcodes svc =
  let tid = 0 in
  let call = Service.Conn.Loopback.call in
  let conn = Service.Conn.Loopback.connect svc ~tid in
  let expect what expected got =
    if got <> expected then
      failwith
        (Printf.sprintf "%s: expected %s, got %s" what
           (Service.Codec.reply_to_string expected)
           (Service.Codec.reply_to_string got))
  in
  expect "get missing" Service.Codec.Not_found (call conn (Service.Codec.Get 1));
  expect "put fresh" Service.Codec.Created
    (call conn (Service.Codec.Put { key = 1; value = 10 }));
  expect "get present" (Service.Codec.Value 10) (call conn (Service.Codec.Get 1));
  expect "put overwrite" Service.Codec.Updated
    (call conn (Service.Codec.Put { key = 1; value = 11 }));
  expect "cas mismatch" Service.Codec.Cas_fail
    (call conn (Service.Codec.Cas { key = 1; expected = 10; desired = 99 }));
  expect "cas match" Service.Codec.Cas_ok
    (call conn (Service.Codec.Cas { key = 1; expected = 11; desired = 12 }));
  expect "get after cas" (Service.Codec.Value 12)
    (call conn (Service.Codec.Get 1));
  expect "del present" Service.Codec.Deleted (call conn (Service.Codec.Del 1));
  expect "del missing" Service.Codec.Not_found (call conn (Service.Codec.Del 1));
  expect "cas missing" Service.Codec.Not_found
    (call conn (Service.Codec.Cas { key = 1; expected = 0; desired = 0 }))

let selftest ~scheme ~structure ~shards ~clients ~duration =
  let svc =
    Service.Shard.create
      ~structure:(Workload.Registry.find_structure structure)
      ~scheme:(Workload.Registry.find_scheme scheme)
      { Service.Shard.default_config with Service.Shard.shards; clients }
  in
  Fun.protect
    ~finally:(fun () -> svc.Service.Shard.stop ())
    (fun () ->
      exercise_opcodes svc;
      let res =
        Service.Loadgen.run svc ~mode:Service.Loadgen.Closed ~clients ~duration
          ~dist:(Workload.Keydist.uniform ~range:4096)
          ~mix:Service.Loadgen.read_mostly ~seed:7 ()
      in
      if res.Service.Loadgen.ops = 0 then failwith "selftest: no ops completed";
      if res.Service.Loadgen.errors > 0 then
        failwith
          (Printf.sprintf "selftest: %d error replies"
             res.Service.Loadgen.errors);
      Printf.printf
        "selftest ok: %s/%s, %d shards — opcodes round-tripped, %d ops in \
         %.2fs (%.0f ops/s), %s\n"
        svc.Service.Shard.scheme_name svc.Service.Shard.structure_name shards
        res.Service.Loadgen.ops res.Service.Loadgen.wall
        res.Service.Loadgen.throughput
        (Service.Slo.report svc.Service.Shard.slo))

let daemon ~socket ~transport ~loop ~scheme ~structure ~shards ~clients
    ~mailbox_cap ~batch ~wal ~arena ~arena_policy =
  (* A client vanishing mid-reply must cost its connection, not the
     daemon: EPIPE on that fd instead of process death. *)
  Service.Conn.ignore_sigpipe ();
  let arena_t =
    if not arena then None
    else begin
      (match transport with
      | `Shm -> ()
      | `Unix ->
          failwith
            "kvd: --arena requires --transport shm (the arena file lives \
             beside the listen FIFO and is served by reference over it)");
      if wal <> None then
        failwith
          "kvd: --arena and --wal are incompatible (arena blobs do not fit \
           the int-valued mutation log)";
      let policy =
        match Shmalloc.Arena.policy_of_string arena_policy with
        | Some p -> p
        | None ->
            failwith
              (Printf.sprintf "kvd: bad --arena-policy %S (handoff|epoch)"
                 arena_policy)
      in
      (* Claim the rendezvous path first: the stale sweep that clears a
         dead predecessor's litter also targets its arena file, and must
         run before our own O_EXCL create. *)
      Service.Shm_conn.claim_listen_path socket;
      Some
        (Shmalloc.Arena.create ~path:(socket ^ ".arena") ~slots:clients
           ~policy ~tids:shards ())
    end
  in
  let cfg =
    {
      Service.Shard.default_config with
      Service.Shard.shards;
      clients;
      mailbox_capacity = mailbox_cap;
      batch;
      (* The shm multiplexer answers GETs inline through a bracketed
         zero-copy read when it has a slot; the socket path has no
         single serving domain to lease one to. *)
      zc_readers = (match transport with `Shm -> 1 | `Unix -> 0);
      arena = arena_t;
    }
  in
  let structure = Workload.Registry.find_structure structure in
  let scheme = Workload.Registry.find_scheme scheme in
  let svc, primary =
    match wal with
    | None -> (Service.Shard.create ~structure ~scheme cfg, None)
    | Some dir ->
        let store = Replica.Store.fs ~dir in
        let p, boot = Replica.Primary.create ~structure ~scheme cfg ~store () in
        Array.iteri
          (fun shard (r : Replica.Wal.recovery) ->
            Printf.printf
              "kvd: shard %d wal: %d records (last seq %d), %d snapshot \
               bindings, %d replayed%s\n"
              shard r.Replica.Wal.r_records r.Replica.Wal.r_last_seq
              boot.Replica.Primary.b_snap_bindings.(shard)
              boot.Replica.Primary.b_replayed.(shard)
              (match r.Replica.Wal.r_truncated_segment with
              | Some seg ->
                  Printf.sprintf ", torn tail: %d bytes truncated from %s"
                    r.Replica.Wal.r_truncated_bytes seg
              | None -> ""))
          boot.Replica.Primary.b_recovery;
        (p.Replica.Primary.svc, Some p)
  in
  let ext = Option.map (fun p req -> Replica.Primary.handle p req) primary in
  let server =
    match transport with
    | `Unix ->
        `Unix_srv (Service.Conn.serve_unix svc ~path:socket ?ext ~backend:loop ())
    | `Shm -> `Shm_srv (Service.Shm_conn.serve svc ~path:socket ?ext ())
  in
  Printf.printf
    "kvd: serving %s/%s with %d shards, %d client slots on %s (%s)%s\n%!"
    svc.Service.Shard.scheme_name svc.Service.Shard.structure_name shards
    clients socket
    (match (transport, loop) with
    | `Shm, _ -> "shm rings"
    | `Unix, `Threaded -> "unix socket, thread per connection"
    | `Unix, `Evloop p ->
        Printf.sprintf "unix socket, event loop: %s"
          (match p with
          | `Epoll -> "epoll"
          | `Select -> "select"
          | `Auto -> if Service.Poller.available () then "epoll" else "select"))
    (match wal with
    | Some dir -> Printf.sprintf " (wal: %s, group commit)" dir
    | None -> "");
  (match arena_t with
  | Some a ->
      Printf.printf
        "kvd: value arena %s (%d bytes, %d classes, %d slots, %s)\n%!"
        (Shmalloc.Arena.path a)
        (Shmalloc.Arena.size_bytes a)
        (Shmalloc.Arena.nclasses a)
        (Shmalloc.Arena.nslots a)
        (Shmalloc.Arena.policy_name (Shmalloc.Arena.policy a))
  | None -> ());
  (* Self-pipe shutdown: OCaml signal handlers run at allocation/poll
     points on whichever domain trips them, so tearing down in the
     handler itself (shutdown, snapshot fsyncs, Primary.stop's domain
     joins) can deadlock on a channel or service lock the interrupted
     domain holds.  The handler only flips a flag and writes one
     pre-allocated byte; the main loop wakes from select and runs the
     whole teardown in ordinary context. *)
  let stopping = Atomic.make false in
  let wake_rd, wake_wr = Unix.pipe ~cloexec:true () in
  let wake_byte = Bytes.make 1 '!' in
  let request_stop _ =
    if not (Atomic.exchange stopping true) then
      ignore (Unix.write wake_wr wake_byte 0 1)
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  let rec wait () =
    match Unix.select [ wake_rd ] [] [] (-1.0) with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        if not (Atomic.get stopping) then wait ()
  in
  wait ();
  (* Teardown, on the main flow: stop the listener, then the service
     (queued requests get Error replies).  With a WAL, snapshot every
     shard first so the next boot replays a short log instead of the
     whole history. *)
  Printf.printf "kvd: shutting down (%d processed, %d shed, %s)\n%!"
    (svc.Service.Shard.processed ())
    (svc.Service.Shard.sheds ())
    (Service.Slo.report svc.Service.Shard.slo);
  (* Either transport unlinks everything it put on disk: the socket
     path, or the listen FIFO plus every live connection's segment file
     and doorbell FIFOs — each segment stamped closed first so blocked
     clients observe the close instead of hanging on a dead ring. *)
  (match server with
  | `Unix_srv s -> Service.Conn.shutdown s
  | `Shm_srv s -> Service.Shm_conn.shutdown s);
  (match primary with
  | Some p ->
      for shard = 0 to shards - 1 do
        let file, seq = Replica.Primary.snapshot_shard p ~shard () in
        Printf.printf "kvd: shard %d snapshot %s (seq %d)\n%!" shard file seq
      done;
      Replica.Primary.stop p
  | None -> svc.Service.Shard.stop ());
  (* Arena teardown last: consumers (its retire builders' users) are
     joined, remote readers saw their segments close.  Flush drains
     the builders so the unreclaimed gauge reads honestly in traces,
     then close, unmap, unlink. *)
  (match arena_t with
  | Some a ->
      Shmalloc.Arena.flush a;
      Shmalloc.Arena.mark_closed a;
      Shmalloc.Arena.detach a;
      Shmalloc.Arena.unlink a
  | None -> ());
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ wake_rd; wake_wr ]

(* Follower mode: connect to a live kvd --wal daemon, discover its
   shard count from Rep_info, then chase the committed record stream
   with pulls, applying into a local service of the same shape. *)
let follow ~target ~scheme ~structure ~clients =
  Service.Conn.ignore_sigpipe ();
  let fd = Service.Conn.connect_unix ~path:target in
  let nshards =
    match Service.Conn.call_fd fd Service.Codec.Rep_info with
    | Service.Codec.Rep_state committed -> Array.length committed
    | Service.Codec.Error m ->
        failwith (Printf.sprintf "%s is not serving a WAL (%s)" target m)
    | r ->
        failwith
          ("unexpected Rep_info reply " ^ Service.Codec.reply_to_string r)
  in
  let pull ~shard ~from ~max =
    Service.Conn.call_fd fd (Service.Codec.Rep_pull { shard; from; max })
  in
  let f, _ =
    Replica.Follower.create
      ~structure:(Workload.Registry.find_structure structure)
      ~scheme:(Workload.Registry.find_scheme scheme)
      {
        Service.Shard.default_config with
        Service.Shard.shards = nshards;
        clients = max 2 clients;
      }
      ~pull ()
  in
  Printf.printf "kvd: following %s (%d shards) into %s/%s\n%!" target nshards
    scheme structure;
  (* Same handler discipline as [daemon]: the handler only flips the
     flag (an Atomic — it may run on any domain); the loop notices
     within one poll interval.  Every exit of [Follower.drive] is a
     return — including pull errors and stream gaps, which previously
     escaped as [Failure] past the handlers below and skipped this
     cleanup, leaving the shard domains alive and the socket open. *)
  let running = Atomic.make true in
  let stop _ = Atomic.set running false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  let last_report = ref (Unix.gettimeofday ()) in
  let report () =
    let applied = Replica.Follower.applied f in
    let lag = Replica.Follower.lag f in
    Printf.printf "kvd: applied %s, lag %s frames\n%!"
      (String.concat "," (Array.to_list (Array.map string_of_int applied)))
      (String.concat "," (Array.to_list (Array.map string_of_int lag)))
  in
  let on_progress () =
    let now = Unix.gettimeofday () in
    if now -. !last_report > 2.0 then begin
      last_report := now;
      report ()
    end
  in
  (match
     Replica.Follower.drive f
       ~running:(fun () -> Atomic.get running)
       ~on_progress ()
   with
  | `Stopped -> ()
  | `Primary_gone ->
      Printf.eprintf "kvd: primary hung up; follower state kept to here\n%!"
  | `Io_error m -> Printf.eprintf "kvd: lost the primary: %s\n%!" m
  | `Pull_error m ->
      Printf.eprintf "kvd: pull failed (%s); follower state kept to here\n%!" m);
  report ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Replica.Follower.stop f

(* Instance scoping: --name stamps the listen path (and therefore the
   shm segment/doorbell litter, which is swept by listen-path prefix)
   so N daemons on one host never claim each other's files. *)
let resolve_socket ~socket ~name =
  match (socket, name) with
  | Some s, _ -> s
  | None, None -> "/tmp/kvd.sock"
  | None, Some n ->
      String.iter
        (fun ch ->
          match ch with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> ()
          | _ -> failwith (Printf.sprintf "kvd: bad --name %S (use [A-Za-z0-9_-])" n))
        n;
      Printf.sprintf "/tmp/kvd-%s.sock" n

let main socket name transport loop scheme structure shards clients mailbox_cap
    batch selftest_flag duration wal follow_target arena arena_policy =
  if selftest_flag then
    match
      selftest ~scheme ~structure ~shards ~clients ~duration
    with
    | () -> 0
    | exception e ->
        Printf.eprintf "kvd selftest FAILED: %s\n" (Printexc.to_string e);
        1
  else
    match follow_target with
    | Some target -> (
        match follow ~target ~scheme ~structure ~clients with
        | () -> 0
        | exception e ->
            Printf.eprintf "kvd follower FAILED: %s\n" (Printexc.to_string e);
            1)
    | None -> (
        match
          let socket = resolve_socket ~socket ~name in
          daemon ~socket ~transport ~loop ~scheme ~structure ~shards ~clients
            ~mailbox_cap ~batch ~wal ~arena ~arena_policy
        with
        | () -> 0
        | exception Failure m ->
            Printf.eprintf "%s\n" m;
            1
        | exception Service.Conn.Addr_in_use path ->
            Printf.eprintf
              "kvd: %s is owned by a live daemon (connect probe answered) — \
               pick another --socket or stop the incumbent\n"
              path;
            1
        | exception (Replica.Wal.Corrupt { shard; segment; seq; reason } as e)
          ->
            Printf.eprintf
              "kvd: wal corrupt (shard %d, %s, seq %d): %s\n%s\n" shard
              segment seq reason (Printexc.to_string e);
            1)

open Cmdliner

let socket =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Listen path: a unix socket, or with $(b,--transport shm) the \
           rendezvous FIFO clients announce their segments to.  Default \
           /tmp/kvd.sock, or /tmp/kvd-$(b,NAME).sock under $(b,--name).")

let name_arg =
  Arg.(
    value & opt (some string) None
    & info [ "name" ] ~docv:"NAME"
        ~doc:
          "Instance name: scopes the listen path (and, for shm, the \
           segment/doorbell files swept on stale-socket claims) to \
           /tmp/kvd-$(docv).*, so several daemons share a host without \
           claiming each other's litter.  [A-Za-z0-9_-] only.")

let loop =
  Arg.(
    value
    & opt
        (enum
           [
             ("threads", `Threaded);
             ("epoll", (`Evloop `Epoll : Service.Conn.backend));
             ("select", `Evloop `Select);
             ("auto", `Evloop `Auto);
           ])
        `Threaded
    & info [ "loop" ] ~docv:"BACKEND"
        ~doc:
          "Connection backend for $(b,--transport unix): $(b,threads) (one \
           handler domain and one leased tid per connection), or an event \
           loop — $(b,epoll), $(b,select), or $(b,auto) (epoll where \
           available) — where a single pump domain holds every connection \
           on one tid, so fan-in is bounded by fds, not domains.")

let transport =
  Arg.(
    value
    & opt (enum [ ("unix", `Unix); ("shm", `Shm) ]) `Unix
    & info [ "transport" ] ~docv:"KIND"
        ~doc:
          "Wire transport: $(b,unix) (socket, one handler domain per \
           connection) or $(b,shm) (per-connection mmap'd ring pairs \
           served by one multiplexer domain; no syscall per op under \
           load).  Same frames, same opcodes.")

let scheme =
  Arg.(
    value & opt string "hyaline"
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:
          "Reclamation scheme for maps and mailboxes (leaky, ebr, hp, he, \
           ibr, hyaline, hyaline1s, hyalines, crystalline, ...).")

let structure =
  Arg.(
    value & opt string "hashmap"
    & info [ "ds" ] ~docv:"STRUCTURE"
        ~doc:"Backing map: list, hashmap, bonsai, or nmtree.")

let shards =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"Partitions / consumer domains.")

let clients =
  Arg.(
    value & opt int 8
    & info [ "clients" ] ~docv:"N"
        ~doc:"Client tid slots = max concurrent connections.")

let mailbox_cap =
  Arg.(
    value & opt int 256
    & info [ "mailbox-cap" ] ~docv:"N"
        ~doc:"Per-shard mailbox bound; a full mailbox sheds.")

let batch =
  Arg.(
    value & opt int 64
    & info [ "batch" ] ~docv:"N"
        ~doc:"Max requests executed per enter/leave bracket.")

let selftest_flag =
  Arg.(
    value & flag
    & info [ "selftest" ]
        ~doc:
          "Run the in-process loopback smoke test (every opcode plus a \
           short closed-loop burst) instead of serving; exit 1 on failure.")

let duration =
  Arg.(
    value & opt float 0.3
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:"Load-burst length for --selftest.")

let wal =
  Arg.(
    value & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Durable mode: group-commit every acked mutation to per-shard \
           write-ahead logs under $(docv) (created if missing), recover \
           from the newest snapshot plus the log on boot, and serve the \
           replication opcodes (Rep_info/Rep_pull) to followers.  SIGINT \
           snapshots each shard before exiting.")

let follow_target =
  Arg.(
    value & opt (some string) None
    & info [ "follow" ] ~docv:"SOCKET"
        ~doc:
          "Follower mode: connect to a live $(b,kvd --wal) daemon on \
           $(docv), discover its shard count, and continuously pull and \
           apply its committed record stream into a local service of the \
           same shape.  Prints applied seqs and lag every 2s.")

let arena_flag =
  Arg.(
    value & flag
    & info [ "arena" ]
        ~doc:
          "Store values as blocks in a shared-memory arena beside the \
           listen path ($(b,--transport shm) only).  Clients that \
           negotiate over A_info get GETs answered by reference — \
           ⟨class, offset, len, generation⟩ — and copy the payload out \
           of their own mapping, validating the generation stamp after \
           the copy.  Incompatible with $(b,--wal).")

let arena_policy =
  Arg.(
    value & opt string "handoff"
    & info [ "arena-policy" ] ~docv:"POLICY"
        ~doc:
          "Cross-process reclamation policy for $(b,--arena): \
           $(b,handoff) (Hyaline-S-style batch handoff to reservation \
           slots; a stalled remote reader pins a bounded batch count) or \
           $(b,epoch) (EBR baseline; a stalled reader pins every block \
           retired since it entered).")

let cmd =
  let doc = "Sharded lock-free KV daemon (lib/service over lib/smr)." in
  Cmd.v (Cmd.info "kvd" ~doc)
    Term.(
      const main $ socket $ name_arg $ transport $ loop $ scheme $ structure
      $ shards $ clients $ mailbox_cap $ batch $ selftest_flag $ duration $ wal
      $ follow_target $ arena_flag $ arena_policy)

let () = exit (Cmd.eval' cmd)
