(* CLI regenerating every table and figure of the paper's evaluation,
   plus the service-layer sweep.

   Usage:
     experiments table1
     experiments fig8  [--ds hashmap] [--paper] [--threads 1,2,4] [--plot]
     experiments fig10a [--active 2]
     experiments lag [--ds hashmap] [--metrics-csv m.csv] [--prom m.prom]
     experiments ablate-batch | ablate-slots | ablate-freq | ablate-spurious
     experiments serve [--schemes ebr,hyaline,hyaline1s] [--shards 4]
                       [--stalled-shards 1] [--rate 20000] [--prom m.prom]
     experiments all

   Each throughput figure shares its runs with its companion
   unreclaimed-objects figure (8/9, 11/12, 13/14, 15/16), so either
   name prints both metrics; --plot additionally renders the two
   ASCII charts (throughput, and unreclaimed on a log axis). *)

open Workload

let all_ds = [ "list"; "hashmap"; "bonsai"; "nmtree" ]

(* --dist {uniform,zipf[:theta]} -> the Figures.scale spec. *)
let parse_dist s =
  match String.lowercase_ascii s with
  | "uniform" -> `Uniform
  | "zipf" -> `Zipf 0.99
  | ls when String.length ls > 5 && String.sub ls 0 5 = "zipf:" -> (
      match float_of_string_opt (String.sub ls 5 (String.length ls - 5)) with
      | Some theta when theta >= 0.0 -> `Zipf theta
      | _ ->
          Format.eprintf "bad --dist %S (theta must be a float >= 0)@." s;
          exit 2)
  | _ ->
      Format.eprintf "unknown --dist %S (try uniform, zipf, zipf:0.8)@." s;
      exit 2

let scale_of ~paper ~threads ~duration ~repeat ~dist =
  let base = if paper then Figures.paper else Figures.quick in
  let base =
    match threads with
    | [] -> base
    | ts -> { base with Figures.threads = ts }
  in
  let base =
    match duration with
    | None -> base
    | Some d -> { base with Figures.duration = d }
  in
  let base =
    match dist with
    | None -> base
    | Some s -> { base with Figures.dist = Some (parse_dist s) }
  in
  match repeat with
  | None -> base
  | Some r -> { base with Figures.repeats = r }

(* Group collected rows into Plot series keyed by scheme name,
   preserving first-appearance order. *)
let series_of rows ~x ~y =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = r.Driver.scheme in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key [];
        order := key :: !order
      end;
      Hashtbl.replace tbl key ((x r, y r) :: Hashtbl.find tbl key))
    rows;
  List.rev_map
    (fun label ->
      { Plot.label; points = List.rev (Hashtbl.find tbl label) })
    !order

let render_charts ~title ~xlabel rows =
  let throughput =
    Plot.render ~title:(title ^ " — throughput") ~ylabel:"Mops/s" ~xlabel
      (series_of rows
         ~x:(fun r -> float_of_int r.Driver.threads)
         ~y:(fun r -> r.Driver.throughput))
  in
  let unreclaimed =
    Plot.render ~logy:true
      ~title:(title ^ " — avg unreclaimed objects")
      ~ylabel:"blocks" ~xlabel
      (series_of rows
         ~x:(fun r -> float_of_int r.Driver.threads)
         ~y:(fun r -> r.Driver.avg_unreclaimed))
  in
  print_string throughput;
  print_newline ();
  print_string unreclaimed

let render_charts_stalled ~title rows =
  let mk ~logy ~ylabel y =
    Plot.render ~logy ~title:(title ^ " — " ^ ylabel) ~ylabel
      ~xlabel:"stalled threads"
      (series_of rows
         ~x:(fun r -> float_of_int r.Driver.stalled)
         ~y)
  in
  print_string (mk ~logy:true ~ylabel:"avg unreclaimed" (fun r -> r.Driver.avg_unreclaimed));
  print_newline ();
  print_string (mk ~logy:false ~ylabel:"Mops/s" (fun r -> r.Driver.throughput))

(* Optional machine-readable sink, set from --csv. *)
let csv_channel : out_channel option ref = ref None

let csv_header = "figure,scheme,structure,threads,stalled,ops,duration_s,mops,avg_unreclaimed,max_unreclaimed,retires,frees\n"

let csv_row oc title (r : Driver.result) =
  Printf.fprintf oc "%s,%s,%s,%d,%d,%d,%.4f,%.6f,%.1f,%d,%d,%d\n"
    (String.map (function ',' -> ';' | c -> c) title)
    r.Driver.scheme r.Driver.structure r.Driver.threads r.Driver.stalled
    r.Driver.ops r.Driver.duration r.Driver.throughput
    r.Driver.avg_unreclaimed r.Driver.max_unreclaimed r.Driver.retires
    r.Driver.frees

(* Observability sinks for the instrumented `lag` figure: --metrics-csv
   (one row per data point: lag percentiles, event totals, final
   gauges) and --prom (concatenated Prometheus text dumps). *)
let metrics_channel : out_channel option ref = ref None
let prom_channel : out_channel option ref = ref None

let metrics_header =
  "figure,scheme,structure,threads,stalled,lag_count,lag_p50_ns,lag_p90_ns,lag_p99_ns,lag_max_ns,events_alloc,events_retire,events_free,events_enter,events_leave,events_trim,gauges\n"

let metrics_row oc title ({ Figures.l_result = r; l_recorder } : Figures.lag_row)
    =
  let h = Obs.Recorder.lag_hist l_recorder in
  let ev k = Obs.Recorder.events_total l_recorder k in
  let gauges =
    Obs.Recorder.gauges l_recorder
    |> List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
    |> String.concat ";"
  in
  Printf.fprintf oc "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n"
    (String.map (function ',' -> ';' | c -> c) title)
    r.Driver.scheme r.Driver.structure r.Driver.threads r.Driver.stalled
    (Obs.Hist.count h)
    (Obs.Hist.percentile h 0.50)
    (Obs.Hist.percentile h 0.90)
    (Obs.Hist.percentile h 0.99)
    (Obs.Hist.max_value h) (ev Obs.Ring.Alloc) (ev Obs.Ring.Retire)
    (ev Obs.Ring.Free) (ev Obs.Ring.Enter) (ev Obs.Ring.Leave)
    (ev Obs.Ring.Trim) gauges

let emit_lag_rows ~plot title f =
  Format.printf "## %s@." title;
  Format.printf "%-18s %-8s %4s %4s %9s %9s %9s %9s %9s@." "scheme"
    "structure" "thr" "stl" "frees" "lag-p50" "lag-p90" "lag-p99" "lag-max";
  f (fun ({ Figures.l_result = r; l_recorder } as row) ->
      let h = Obs.Recorder.lag_hist l_recorder in
      Format.printf "%-18s %-8s %4d %4d %9d %9s %9s %9s %9s@."
        r.Driver.scheme r.Driver.structure r.Driver.threads r.Driver.stalled
        (Obs.Hist.count h)
        (Plot.fmt_ns (Obs.Hist.percentile h 0.50))
        (Plot.fmt_ns (Obs.Hist.percentile h 0.90))
        (Plot.fmt_ns (Obs.Hist.percentile h 0.99))
        (Plot.fmt_ns (Obs.Hist.max_value h));
      if plot then
        print_string
          (Plot.histogram
             ~title:
               (Printf.sprintf "%s / %s, %d stalled — retire→free lag"
                  r.Driver.scheme r.Driver.structure r.Driver.stalled)
             (Obs.Hist.buckets h));
      (match !metrics_channel with
      | Some oc ->
          metrics_row oc title row;
          flush oc
      | None -> ());
      match !prom_channel with
      | Some oc ->
          Printf.fprintf oc "# run: %s scheme=%s structure=%s stalled=%d\n%s\n"
            title r.Driver.scheme r.Driver.structure r.Driver.stalled
            (Obs.Recorder.prometheus l_recorder);
          flush oc
      | None -> ());
  Format.printf "@."

let emit_rows ?(plot = `No) title f =
  Format.printf "## %s@." title;
  Driver.pp_result_header Format.std_formatter ();
  let rows = ref [] in
  f (fun r ->
      rows := r :: !rows;
      (match !csv_channel with
      | Some oc ->
          csv_row oc title r;
          flush oc
      | None -> ());
      Driver.pp_result Format.std_formatter r;
      Format.pp_print_flush Format.std_formatter ());
  Format.printf "@.";
  match plot with
  | `No -> ()
  | `Threads -> render_charts ~title ~xlabel:"threads" (List.rev !rows)
  | `Stalled -> render_charts_stalled ~title (List.rev !rows)

let run_sweep ~plot ~sc ~ds ~schemes ~mix ~fig_label =
  List.iter
    (fun structure_name ->
      emit_rows
        ~plot:(if plot then `Threads else `No)
        (Printf.sprintf "%s — %s" fig_label structure_name)
        (fun emit -> Figures.sweep ~sc ~structure_name ~schemes ~mix ~emit))
    ds

(* ------------------------------------------------------------------ *)
(* `experiments serve` — the lib/service sweep: clients x scheme x
   shards against the sharded KV core, one row per run with completed
   throughput, shed count, submit->reply latency tails and the
   control-plane tracker's sampled unreclaimed ceiling.  With
   --stalled-shards, the stalled consumers park inside a control-plane
   bracket (the paper's §2.3 adversary aimed at the service's own
   mailboxes): robust schemes keep ctl-max-unr bounded while the
   surviving shards answer and the stalled ones shed. *)

type serve_row = {
  sv_scheme : string;
  sv_structure : string;
  sv_shards : int;
  sv_clients : int;
  sv_stalled : int;
  sv_mode : string;
  sv_res : Service.Loadgen.result;
  sv_p50 : int;
  sv_p99 : int;
  sv_p999 : int;
  sv_ctl_max : int;
  sv_ctl : Smr.Stats.snapshot;
}

let serve_csv_header =
  "figure,scheme,structure,shards,clients,stalled_shards,mode,duration_s,submitted,ops,sheds,errors,ops_per_s,p50_ns,p99_ns,p999_ns,ctl_max_unreclaimed,ctl_retires,ctl_frees\n"

let serve_csv_row oc title (r : serve_row) =
  Printf.fprintf oc "%s,%s,%s,%d,%d,%d,%s,%.4f,%d,%d,%d,%d,%.1f,%d,%d,%d,%d,%d,%d\n"
    (String.map (function ',' -> ';' | c -> c) title)
    r.sv_scheme r.sv_structure r.sv_shards r.sv_clients r.sv_stalled r.sv_mode
    r.sv_res.Service.Loadgen.wall r.sv_res.Service.Loadgen.submitted
    r.sv_res.Service.Loadgen.ops r.sv_res.Service.Loadgen.sheds
    r.sv_res.Service.Loadgen.errors r.sv_res.Service.Loadgen.throughput
    r.sv_p50 r.sv_p99 r.sv_p999 r.sv_ctl_max r.sv_ctl.Smr.Stats.retires
    r.sv_ctl.Smr.Stats.frees

let serve_pp_header () =
  Format.printf "%-18s %3s %3s %3s %9s %8s %8s %8s %8s %8s %11s@." "scheme"
    "shd" "cli" "stl" "ops" "sheds" "Kops/s" "p50" "p99" "p99.9" "ctl-max-unr"

let serve_pp_row (r : serve_row) =
  Format.printf "%-18s %3d %3d %3d %9d %8d %8.1f %8s %8s %8s %11d@."
    r.sv_scheme r.sv_shards r.sv_clients r.sv_stalled
    r.sv_res.Service.Loadgen.ops r.sv_res.Service.Loadgen.sheds
    (r.sv_res.Service.Loadgen.throughput /. 1e3)
    (Plot.fmt_ns r.sv_p50) (Plot.fmt_ns r.sv_p99) (Plot.fmt_ns r.sv_p999)
    r.sv_ctl_max

(* Prefill through the mailboxes with a bounded submission window:
   async (a closed-loop prefill would pay a full round-trip per key on
   one core) but never deep enough to shed. *)
let serve_prefill (svc : Service.Shard.t) ~n ~range ~seed =
  let rng = Prims.Rng.create ~seed in
  let dist = Keydist.uniform ~range in
  let completed = Atomic.make 0 in
  let submitted = ref 0 in
  while !submitted < n do
    if !submitted - Atomic.get completed < 64 then begin
      let k = Keydist.draw dist rng in
      incr submitted;
      svc.Service.Shard.submit ~tid:0
        (Service.Codec.Put { key = k; value = k })
        (fun _ -> Atomic.incr completed)
    end
    else Domain.cpu_relax ()
  done;
  while Atomic.get completed < n do Unix.sleepf 0.0002 done

let serve_one ~(scheme : Registry.scheme) ~structure_name ~shards ~clients
    ~stalled ~duration ~dist ~mode ~mix ~churn ~mailbox_cap ~prefill ~range
    ~seed ~recorder : serve_row =
  let structure = Registry.find_structure structure_name in
  let scheme =
    match recorder with
    | None -> scheme
    | Some r ->
        (* Instrument the scheme itself so --prom also carries the
           reclamation-side events/lag next to the service gauges. *)
        { scheme with Registry.s_mod = Smr.Instrument.wrap (Obs.Recorder.probe r) scheme.Registry.s_mod }
  in
  let svc =
    Service.Shard.create ~structure ~scheme
      {
        Service.Shard.default_config with
        Service.Shard.shards;
        clients;
        mailbox_capacity = mailbox_cap;
        seed;
      }
  in
  serve_prefill svc ~n:prefill ~range ~seed:(seed + 17);
  for i = 0 to stalled - 1 do
    svc.Service.Shard.set_stalled ~shard:i true
  done;
  (* Sample the control-plane backlog while the load runs: the row's
     robustness metric is the ceiling, not the (post-drain) final. *)
  let sampling = Atomic.make true in
  let ctl_max = Atomic.make 0 in
  let sampler =
    Domain.spawn (fun () ->
        while Atomic.get sampling do
          let u =
            Smr.Stats.unreclaimed_of
              (Smr.Stats.snapshot (svc.Service.Shard.control_stats ()))
          in
          if u > Atomic.get ctl_max then Atomic.set ctl_max u;
          (match recorder with
          | Some r ->
              List.iter
                (fun (name, v) -> Obs.Recorder.set_gauge r ~name v)
                (svc.Service.Shard.gauges ())
          | None -> ());
          Unix.sleepf 0.005
        done)
  in
  let res =
    Service.Loadgen.run svc ~mode ~clients ~duration ~dist ~mix
      ?churn_ops:churn ~seed ()
  in
  Atomic.set sampling false;
  Domain.join sampler;
  let ctl = Smr.Stats.snapshot (svc.Service.Shard.control_stats ()) in
  let ctl_max =
    max (Atomic.get ctl_max) (Smr.Stats.unreclaimed_of ctl)
  in
  for i = 0 to stalled - 1 do
    svc.Service.Shard.set_stalled ~shard:i false
  done;
  let row =
    {
      sv_scheme = svc.Service.Shard.scheme_name;
      sv_structure = structure_name;
      sv_shards = shards;
      sv_clients = clients;
      sv_stalled = stalled;
      sv_mode =
        (match mode with
        | Service.Loadgen.Closed -> "closed"
        | Service.Loadgen.Open r -> Printf.sprintf "open@%.0f/s" r);
      sv_res = res;
      sv_p50 = Service.Slo.p50 svc.Service.Shard.slo;
      sv_p99 = Service.Slo.p99 svc.Service.Shard.slo;
      sv_p999 = Service.Slo.p999 svc.Service.Shard.slo;
      sv_ctl_max = ctl_max;
      sv_ctl = ctl;
    }
  in
  (match recorder with
  | Some r ->
      Obs.Hist.merge
        ~into:(Obs.Recorder.hist r ~name:"kv_request_latency_ns")
        (Service.Slo.hist svc.Service.Shard.slo);
      Obs.Hist.merge
        ~into:(Obs.Recorder.hist r ~name:"kv_batch_size")
        svc.Service.Shard.batch_hist;
      List.iter
        (fun (name, v) -> Obs.Recorder.set_gauge r ~name v)
        (svc.Service.Shard.gauges ());
      Obs.Recorder.set_gauge r ~name:"kv_ctl_max_unreclaimed_sampled" ctl_max
  | None -> ());
  svc.Service.Shard.stop ();
  row

let serve_mix_of mixname =
  match String.lowercase_ascii mixname with
  | "read" | "read-mostly" -> Service.Loadgen.read_mostly
  | "write" | "write-heavy" -> Service.Loadgen.write_heavy
  | "get" | "read-only" ->
      (* Pure GETs: on the shm transport every one is a bracketed
         in-process read — the zero-copy hot path in isolation. *)
      { Service.Loadgen.get_pct = 100; put_pct = 0; del_pct = 0; cas_pct = 0 }
  | other ->
      Format.eprintf "unknown --mix %S (read, write, or get)@." other;
      exit 2

let run_serve ~sc ~ds ~schemes ~shards ~stalled ~rate ~mixname ~churn
    ~mailbox_cap ~plot =
  let structure_name = match ds with "all" -> "hashmap" | d -> d in
  let mix = serve_mix_of mixname in
  let mode =
    match (rate, stalled) with
    | Some r, _ -> Service.Loadgen.Open r
    | None, 0 -> Service.Loadgen.Closed
    | None, _ ->
        (* A closed-loop client whose request is parked in a stalled
           mailbox would wait out the whole run; open loop keeps the
           arrivals coming, which is the regime shedding exists for. *)
        Format.printf
          "(stalled run: forcing open loop at 20000 req/s; override with \
           --rate)@.";
        Service.Loadgen.Open 20000.0
  in
  let range = sc.Figures.key_range in
  let dist =
    match sc.Figures.dist with
    | None | Some `Uniform -> Keydist.uniform ~range
    | Some (`Zipf theta) -> Keydist.zipf ~theta ~range ()
  in
  let prefill = min 2000 sc.Figures.prefill in
  let title =
    Printf.sprintf
      "serve (%s, %s, %d shards, %d stalled, mix=%s, dist=%s)" structure_name
      sc.Figures.label shards stalled mixname (Keydist.describe dist)
  in
  Format.printf "## %s@." title;
  serve_pp_header ();
  let rows = ref [] in
  List.iter
    (fun scheme_name ->
      let scheme = Registry.find_scheme scheme_name in
      List.iter
        (fun clients ->
          let recorder =
            match !prom_channel with
            | None -> None
            | Some _ ->
                Some (Obs.Recorder.create ~nthreads:(clients + shards) ())
          in
          let row =
            serve_one ~scheme ~structure_name ~shards ~clients ~stalled
              ~duration:sc.Figures.duration ~dist ~mode ~mix ~churn
              ~mailbox_cap ~prefill ~range ~seed:4242 ~recorder
          in
          rows := row :: !rows;
          serve_pp_row row;
          (match !csv_channel with
          | Some oc ->
              serve_csv_row oc title row;
              flush oc
          | None -> ());
          match (recorder, !prom_channel) with
          | Some r, Some oc ->
              Printf.fprintf oc
                "# run: %s scheme=%s clients=%d stalled=%d\n%s\n" title
                row.sv_scheme clients stalled (Obs.Recorder.prometheus r);
              flush oc
          | _ -> ())
        sc.Figures.threads)
    schemes;
  Format.printf "@.";
  if plot then begin
    let series y =
      let order = ref [] in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun r ->
          if not (Hashtbl.mem tbl r.sv_scheme) then begin
            Hashtbl.add tbl r.sv_scheme [];
            order := r.sv_scheme :: !order
          end;
          Hashtbl.replace tbl r.sv_scheme
            ((float_of_int r.sv_clients, y r) :: Hashtbl.find tbl r.sv_scheme))
        (List.rev !rows);
      List.rev_map
        (fun label -> { Plot.label; points = List.rev (Hashtbl.find tbl label) })
        !order
    in
    print_string
      (Plot.render ~title:(title ^ " — throughput") ~ylabel:"Kops/s"
         ~xlabel:"clients"
         (series (fun r -> r.sv_res.Service.Loadgen.throughput /. 1e3)));
    print_newline ();
    print_string
      (Plot.render ~logy:true ~title:(title ^ " — p99 latency") ~ylabel:"ns"
         ~xlabel:"clients"
         (series (fun r -> float_of_int (max 1 r.sv_p99))))
  end

(* ------------------------------------------------------------------ *)
(* serve --transport: the same service behind the real wire.  The
   inproc rows above measure the service core (submit→reply inside the
   process); these measure what a client observes — full RTT through
   the unix socket's syscall-per-frame path, or through the shm rings,
   which cross no syscall per operation.  Same codec, same opcodes,
   same seeded request streams. *)

type transport_row = {
  tp_transport : string;
  tp_scheme : string;
  tp_shards : int;
  tp_clients : int;
  tp_ops : int;
  tp_wall : float;
  tp_p50 : int;
  tp_p99 : int;
  tp_p999 : int;
}

let transport_csv_header =
  "figure,transport,scheme,structure,shards,clients,duration_s,ops,ops_per_s,rtt_p50_ns,rtt_p99_ns,rtt_p999_ns\n"

let transport_csv_row oc title structure_name (r : transport_row) =
  Printf.fprintf oc "%s,%s,%s,%s,%d,%d,%.4f,%d,%.1f,%d,%d,%d\n"
    (String.map (function ',' -> ';' | c -> c) title)
    r.tp_transport r.tp_scheme structure_name r.tp_shards r.tp_clients
    r.tp_wall r.tp_ops
    (float_of_int r.tp_ops /. r.tp_wall)
    r.tp_p50 r.tp_p99 r.tp_p999

let transport_pp_header () =
  Format.printf "%-6s %-18s %3s %3s %9s %8s %8s %8s %8s@." "wire" "scheme"
    "shd" "cli" "ops" "Kops/s" "p50" "p99" "p99.9"

let transport_pp_row (r : transport_row) =
  Format.printf "%-6s %-18s %3d %3d %9d %8.1f %8s %8s %8s@." r.tp_transport
    r.tp_scheme r.tp_shards r.tp_clients r.tp_ops
    (float_of_int r.tp_ops /. r.tp_wall /. 1e3)
    (Plot.fmt_ns r.tp_p50) (Plot.fmt_ns r.tp_p99) (Plot.fmt_ns r.tp_p999)

let transport_path kind =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "kv-serve-%d.%s" (Unix.getpid ()) kind)

(* One client endpoint as a (call, close) pair, erasing the backend. *)
let transport_connect kind ~path =
  match kind with
  | "unix" ->
      let fd = Service.Conn.connect_unix ~path in
      ((fun req -> Service.Conn.call_fd fd req), fun () -> Unix.close fd)
  | "shm" ->
      let c = Service.Shm_conn.connect ~path in
      ( (fun req -> Service.Shm_conn.call c req),
        fun () -> Service.Shm_conn.close c )
  | k -> invalid_arg ("unknown transport " ^ k)

let transport_serve kind svc ~path =
  match kind with
  | "unix" ->
      let s = Service.Conn.serve_unix svc ~path () in
      fun () -> Service.Conn.shutdown s
  | "shm" ->
      let s = Service.Shm_conn.serve svc ~path () in
      fun () -> Service.Shm_conn.shutdown s
  | k -> invalid_arg ("unknown transport " ^ k)

let serve_transport_one ~kind ~(scheme : Registry.scheme) ~structure_name
    ~shards ~clients ~duration ~dist ~mix ~mailbox_cap ~prefill ~range ~seed :
    transport_row =
  let svc =
    Service.Shard.create
      ~structure:(Registry.find_structure structure_name)
      ~scheme
      {
        Service.Shard.default_config with
        Service.Shard.shards;
        clients;
        mailbox_capacity = mailbox_cap;
        seed;
        (* Both transports get the same service shape; only shm's
           multiplexer can actually use the zero-copy slot for inline
           GETs — that asymmetry is the thing being measured. *)
        zc_readers = 1;
      }
  in
  serve_prefill svc ~n:prefill ~range ~seed:(seed + 17);
  let path = transport_path kind in
  let stop_server = transport_serve kind svc ~path in
  let t0 = Unix.gettimeofday () in
  let deadline_ns =
    Obs.Clock.now_ns () + int_of_float (duration *. 1e9)
  in
  let worker tid =
    let rng =
      Prims.Rng.create ~seed:(Service.Loadgen.client_seed ~seed ~tid)
    in
    let call, close_conn = transport_connect kind ~path in
    let h = Obs.Hist.create () in
    let ops = ref 0 in
    (* One clock read per op bounds both the loop and the RTT sample,
       so the measurement itself adds no extra syscalls to the
       syscall-free path under test. *)
    let t = ref (Obs.Clock.now_ns ()) in
    while !t < deadline_ns do
      ignore (call (Service.Loadgen.gen_request rng ~dist ~mix));
      let now = Obs.Clock.now_ns () in
      Obs.Hist.add h (now - !t);
      t := now;
      incr ops
    done;
    close_conn ();
    (h, !ops)
  in
  let results =
    if clients = 1 then [ worker 0 ]
    else
      List.init clients (fun tid -> Domain.spawn (fun () -> worker tid))
      |> List.map Domain.join
  in
  let wall = Unix.gettimeofday () -. t0 in
  stop_server ();
  svc.Service.Shard.stop ();
  let hist = Obs.Hist.create () in
  let ops =
    List.fold_left
      (fun acc (h, n) ->
        Obs.Hist.merge ~into:hist h;
        acc + n)
      0 results
  in
  {
    tp_transport = kind;
    tp_scheme = svc.Service.Shard.scheme_name;
    tp_shards = shards;
    tp_clients = clients;
    tp_ops = ops;
    tp_wall = wall;
    tp_p50 = Obs.Hist.percentile hist 0.50;
    tp_p99 = Obs.Hist.percentile hist 0.99;
    tp_p999 = Obs.Hist.percentile hist 0.999;
  }

let run_serve_transport ~sc ~ds ~schemes ~shards ~transport ~mixname
    ~mailbox_cap =
  let structure_name = match ds with "all" -> "hashmap" | d -> d in
  let mix = serve_mix_of mixname in
  let range = sc.Figures.key_range in
  let dist = Keydist.uniform ~range in
  let prefill = min 2000 sc.Figures.prefill in
  let kinds =
    match transport with "all" -> [ "unix"; "shm" ] | k -> [ k ]
  in
  let title =
    Printf.sprintf "serve --transport %s (%s, %s, %d shards, mix=%s)"
      transport structure_name sc.Figures.label shards mixname
  in
  Format.printf "## %s@." title;
  transport_pp_header ();
  List.iter
    (fun scheme_name ->
      let scheme = Registry.find_scheme scheme_name in
      List.iter
        (fun clients ->
          List.iter
            (fun kind ->
              let row =
                serve_transport_one ~kind ~scheme ~structure_name ~shards
                  ~clients ~duration:sc.Figures.duration ~dist ~mix
                  ~mailbox_cap ~prefill ~range ~seed:4242
              in
              transport_pp_row row;
              match !csv_channel with
              | Some oc ->
                  transport_csv_row oc title structure_name row;
                  flush oc
              | None -> ())
            kinds)
        sc.Figures.threads)
    schemes;
  Format.printf "@."

(* serve --smoke: the CI gate for the shm transport.
   1. Roundtrip identity — the same seeded request stream through a
      unix-socket client and an shm client against identically-built
      services must produce byte-identical reply sequences (one codec,
      two wires).
   2. Stalled zero-copy reader — a client parks inside its
      enter/leave bracket while writers churn; the robust scheme keeps
      the unreclaimed backlog bounded, EBR pins everything retired
      since the stall.  The bracket is the isolation boundary the shm
      design leans on, so its robustness is a gate, not a figure. *)

let smoke_reply_trace kind ~path stream =
  let call, close_conn = transport_connect kind ~path in
  let replies =
    List.map (fun req -> Service.Codec.reply_to_string (call req)) stream
  in
  close_conn ();
  replies

let smoke_stalled_backlog ~scheme_name =
  let svc =
    Service.Shard.create
      ~structure:(Registry.find_structure "hashmap")
      ~scheme:(Registry.find_scheme scheme_name)
      {
        Service.Shard.default_config with
        Service.Shard.shards = 1;
        clients = 2;
        zc_readers = 1;
      }
  in
  Fun.protect ~finally:(fun () -> svc.Service.Shard.stop ())
  @@ fun () ->
  match Service.Conn.Zerocopy.connect svc ~tid:0 with
  | None -> failwith "zc slot unavailable"
  | Some zc ->
      Fun.protect ~finally:(fun () -> Service.Conn.Zerocopy.close zc)
      @@ fun () ->
      Service.Conn.Zerocopy.enter zc;
      let lc = Service.Conn.Loopback.connect svc ~tid:1 in
      for i = 0 to 4999 do
        ignore
          (Service.Conn.Loopback.call lc
             (Service.Codec.Put { key = i land 31; value = i }));
        ignore (Service.Conn.Loopback.call lc (Service.Codec.Del (i land 31)))
      done;
      let backlog =
        List.fold_left
          (fun acc st -> acc + Smr.Stats.unreclaimed st)
          0
          (svc.Service.Shard.data_stats ())
      in
      Service.Conn.Zerocopy.leave zc;
      backlog

let run_serve_smoke () =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (* 1: roundtrip identity, unix vs shm, same seed. *)
  let mk_svc () =
    Service.Shard.create
      ~structure:(Registry.find_structure "hashmap")
      ~scheme:(Registry.find_scheme "hyaline")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 2;
        clients = 2;
        seed = 7;
        (* The shm server answers GETs inline through this slot; the
           identity gate then proves the bracketed-read path and the
           routed path give the same answers. *)
        zc_readers = 1;
      }
  in
  let stream =
    Service.Loadgen.request_stream ~seed:4242 ~tid:0
      ~dist:(Keydist.uniform ~range:256)
      ~mix:Service.Loadgen.write_heavy ~n:400
  in
  let trace kind =
    let svc = mk_svc () in
    let path = transport_path ("smoke." ^ kind) in
    let stop_server = transport_serve kind svc ~path in
    let r = smoke_reply_trace kind ~path stream in
    stop_server ();
    svc.Service.Shard.stop ();
    r
  in
  let unix_replies = trace "unix" in
  let shm_replies = trace "shm" in
  if unix_replies <> shm_replies then begin
    let diverge =
      let rec go i us ss =
        match (us, ss) with
        | u :: _, s :: _ when u <> s -> Printf.sprintf "op %d: %s vs %s" i u s
        | _ :: us, _ :: ss -> go (i + 1) us ss
        | _ -> "length mismatch"
      in
      go 0 unix_replies shm_replies
    in
    fail "transport identity: unix and shm reply traces diverge (%s)" diverge
  end
  else
    Format.printf
      "serve smoke: %d-op seeded stream — unix and shm reply traces \
       identical@."
      (List.length stream);
  (* 2: stalled zero-copy reader. *)
  let robust = smoke_stalled_backlog ~scheme_name:"hyalines" in
  let ebr = smoke_stalled_backlog ~scheme_name:"ebr" in
  Format.printf
    "serve smoke: stalled zc reader over 10000 churn ops — hyalines backlog \
     %d (%s), epoch backlog %d@."
    robust
    (if robust * 4 < ebr then "bounded" else "EXCEEDS")
    ebr;
  if robust * 4 >= ebr then
    fail
      "stalled zc reader: hyalines backlog %d not clearly bounded vs epoch \
       %d"
      robust ebr;
  if !problems <> [] then begin
    List.iter
      (fun m -> Format.eprintf "serve smoke FAILED: %s@." m)
      (List.rev !problems);
    exit 1
  end
  else
    Format.printf
      "serve smoke ok: one codec over two wires answers identically, and a \
       stalled zero-copy bracket pins only what the robust scheme bounds@."

(* serve --zc remote --smoke: the cross-process zero-copy CI gate.
   The arena-backed daemon answers GETs by reference ([Val_ref]) to
   clients that negotiated a mapping; everyone else gets materialized
   bytes.  Three gates:
   1. Reference identity — the same seeded stream must answer
      byte-identically whether the client materializes references from
      its own mapping, takes the routed copy path, or talks to a plain
      heap-backed service.  One codec, three value paths.
   2. Stalled remote reader — a client parks inside its reservation
      bracket while another connection churns; [Handoff] (the
      cross-process Hyaline-S discipline) keeps the arena's
      retired-unreclaimed backlog bounded, [Epoch] pins everything
      retired since the stall.
   3. Confirmed-death sweep — a client dies holding its bracket; the
      multiplexer force-clears the reservation slot and reclamation
      drains. *)

let zc_arena_server ~policy ~tag f =
  let path = transport_path ("zc." ^ tag) in
  (* Claim before create: the stale sweep targets <path>.arena*. *)
  Service.Shm_conn.claim_listen_path path;
  let arena =
    Shmalloc.Arena.create ~path:(path ^ ".arena") ~slots:2 ~policy ~tids:2 ()
  in
  let svc =
    Service.Shard.create
      ~structure:(Registry.find_structure "hashmap")
      ~scheme:(Registry.find_scheme "hyaline")
      {
        Service.Shard.default_config with
        Service.Shard.shards = 2;
        clients = 2;
        seed = 7;
        zc_readers = 1;
        arena = Some arena;
      }
  in
  let srv = Service.Shm_conn.serve svc ~path () in
  Fun.protect ~finally:(fun () ->
      Service.Shm_conn.shutdown srv;
      svc.Service.Shard.stop ();
      Shmalloc.Arena.mark_closed arena;
      Shmalloc.Arena.detach arena;
      Shmalloc.Arena.unlink arena)
  @@ fun () -> f ~path ~arena

let zc_reply_trace ~negotiate ~tag stream =
  zc_arena_server ~policy:Shmalloc.Arena.Handoff ~tag @@ fun ~path ~arena:_ ->
  let c = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () -> Service.Shm_conn.close c)
  @@ fun () ->
  if negotiate && not (Service.Shm_conn.enable_zc c) then
    failwith "zc negotiation refused by arena-backed daemon";
  List.map
    (fun req -> Service.Codec.reply_to_string (Service.Shm_conn.call c req))
    stream

let zc_stalled_backlog ~policy =
  zc_arena_server ~policy ~tag:("stall." ^ Shmalloc.Arena.policy_name policy)
  @@ fun ~path ~arena ->
  let c = Service.Shm_conn.connect ~path in
  Fun.protect ~finally:(fun () -> Service.Shm_conn.close c)
  @@ fun () ->
  if not (Service.Shm_conn.enable_zc c) then failwith "zc negotiation failed";
  ignore (Service.Shm_conn.call c (Service.Codec.Put { key = 0; value = 0 }));
  ignore (Service.Shm_conn.call c (Service.Codec.Get 0));
  (* Park the reservation open — the remote analogue of a reader
     stalled mid-bracket. *)
  Service.Shm_conn.zc_hold c;
  let c2 = Service.Shm_conn.connect ~path in
  for i = 1 to 5000 do
    ignore
      (Service.Shm_conn.call c2
         (Service.Codec.Put { key = i land 31; value = i }));
    ignore (Service.Shm_conn.call c2 (Service.Codec.Del (i land 31)))
  done;
  Service.Shm_conn.close c2;
  let backlog = Shmalloc.Arena.unreclaimed arena in
  Service.Shm_conn.zc_release c;
  backlog

let zc_dead_client_drain () =
  zc_arena_server ~policy:Shmalloc.Arena.Handoff ~tag:"dead"
  @@ fun ~path ~arena ->
  let c = Service.Shm_conn.connect ~path in
  if not (Service.Shm_conn.enable_zc c) then failwith "zc negotiation failed";
  let slot = Option.get (Service.Shm_conn.zc_slot c) in
  ignore (Service.Shm_conn.call c (Service.Codec.Put { key = 9; value = 9 }));
  ignore (Service.Shm_conn.call c (Service.Codec.Get 9));
  Service.Shm_conn.zc_hold c;
  (* Die without releasing the bracket; the multiplexer's connection
     sweep must force-clear the slot on the corpse's behalf. *)
  Service.Shm_conn.close c;
  let deadline = Unix.gettimeofday () +. 5.0 in
  while
    Shmalloc.Arena.slot_era arena ~slot <> 0
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  let cleared = Shmalloc.Arena.slot_era arena ~slot = 0 in
  (* With the slot gone nothing holds an era, so fresh churn flushes
     straight through the insert pass and the backlog stays at the
     partial-batch floor. *)
  let c2 = Service.Shm_conn.connect ~path in
  for i = 1 to 500 do
    ignore
      (Service.Shm_conn.call c2
         (Service.Codec.Put { key = i land 15; value = i }));
    ignore (Service.Shm_conn.call c2 (Service.Codec.Del (i land 15)))
  done;
  Service.Shm_conn.close c2;
  (cleared, Shmalloc.Arena.unreclaimed arena)

let run_serve_zc_smoke () =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let stream =
    Service.Loadgen.request_stream ~seed:4242 ~tid:0
      ~dist:(Keydist.uniform ~range:256)
      ~mix:Service.Loadgen.write_heavy ~n:400
  in
  (* 1: reference identity — ref path vs copy path vs heap-backed. *)
  let heap_replies =
    let svc =
      Service.Shard.create
        ~structure:(Registry.find_structure "hashmap")
        ~scheme:(Registry.find_scheme "hyaline")
        {
          Service.Shard.default_config with
          Service.Shard.shards = 2;
          clients = 2;
          seed = 7;
          zc_readers = 1;
        }
    in
    let path = transport_path "zc.heap" in
    let stop_server = transport_serve "shm" svc ~path in
    let r = smoke_reply_trace "shm" ~path stream in
    stop_server ();
    svc.Service.Shard.stop ();
    r
  in
  let ref_replies = zc_reply_trace ~negotiate:true ~tag:"ref" stream in
  let copy_replies = zc_reply_trace ~negotiate:false ~tag:"copy" stream in
  let diverge a b =
    let rec go i xs ys =
      match (xs, ys) with
      | x :: _, y :: _ when x <> y -> Printf.sprintf "op %d: %s vs %s" i x y
      | _ :: xs, _ :: ys -> go (i + 1) xs ys
      | _ -> "length mismatch"
    in
    go 0 a b
  in
  if ref_replies <> copy_replies then
    fail "zc identity: by-reference and copy-path traces diverge (%s)"
      (diverge ref_replies copy_replies)
  else if ref_replies <> heap_replies then
    fail "zc identity: arena-backed and heap-backed traces diverge (%s)"
      (diverge ref_replies heap_replies)
  else
    Format.printf
      "zc smoke: %d-op seeded stream — by-reference, copy-path and \
       heap-backed reply traces identical@."
      (List.length stream);
  (* 2: stalled remote reader, Handoff vs Epoch. *)
  let robust = zc_stalled_backlog ~policy:Shmalloc.Arena.Handoff in
  let ebr = zc_stalled_backlog ~policy:Shmalloc.Arena.Epoch in
  Format.printf
    "zc smoke: stalled remote reader over 10000 churn ops — handoff arena \
     backlog %d (%s), epoch arena backlog %d@."
    robust
    (if robust * 4 < ebr then "bounded" else "EXCEEDS")
    ebr;
  if robust * 4 >= ebr then
    fail "stalled remote reader: handoff backlog %d not clearly bounded vs \
          epoch %d"
      robust ebr;
  (* 3: confirmed-death sweep. *)
  let cleared, residue = zc_dead_client_drain () in
  Format.printf
    "zc smoke: dead client holding its bracket — slot %s, post-sweep \
     backlog %d@."
    (if cleared then "force-cleared" else "STILL PINNED")
    residue;
  if not cleared then fail "dead client's reservation slot never swept";
  if residue >= 64 then
    fail "post-sweep arena backlog %d did not drain to the partial-batch \
          floor"
      residue;
  if !problems <> [] then begin
    List.iter
      (fun m -> Format.eprintf "zc smoke FAILED: %s@." m)
      (List.rev !problems);
    exit 1
  end
  else
    Format.printf
      "zc smoke ok: references answer byte-identically to copies, a stalled \
       remote reader pins only what handoff bounds, and a dead client's \
       reservation is swept@."

(* ------------------------------------------------------------------ *)
(* chaos: the lib/chaos fault-injection matrix.  Everything printed to
   stdout and --csv is a deterministic function of (plan, scheme) —
   replaying a seed must be byte-identical — so wall-clock figures
   (recovery ns, peak backlog magnitude, run seconds) go only to
   --prom. *)

let chaos_csv_header =
  "class,scheme,structure,steps,prompt,deferred,shed,availability_pct,\
   oom_injected,net_faults,churns,crashes,recoveries,recovery_steps,\
   mem_verdict,bound,oracle,oracle_checked,gen_trips\n"

let chaos_mem_verdict (r : Chaos.Engine.result) =
  match r.Chaos.Engine.r_mem_bounded with
  | None -> "n/a"
  | Some true -> "bounded"
  | Some false -> "EXCEEDED"

let chaos_oracle_verdict (r : Chaos.Engine.result) =
  if r.Chaos.Engine.r_oracle.Chaos.Oracle.ok then "pass" else "FAIL"

let chaos_pp_header () =
  Format.printf
    "%-6s %-11s %5s %6s %5s %5s %7s %4s %4s %5s %5s %4s %6s %-8s %s@."
    "class" "scheme" "steps" "prompt" "defer" "shed" "avail" "oom" "net"
    "churn" "crash" "rec" "recst" "memory" "oracle"

let chaos_row_string cls (r : Chaos.Engine.result) =
  let open Chaos.Engine in
  Printf.sprintf
    "%-6s %-11s %5d %6d %5d %5d %6.1f%% %4d %4d %5d %5d %4d %6d %-8s %s" cls
    r.r_scheme r.r_steps r.r_prompt r.r_deferred r.r_shed (availability r)
    r.r_oom_injected r.r_net_faults r.r_churns r.r_crashes r.r_recoveries
    r.r_recovery_steps (chaos_mem_verdict r) (chaos_oracle_verdict r)

let chaos_csv_row oc cls (r : Chaos.Engine.result) =
  let open Chaos.Engine in
  Printf.fprintf oc
    "%s,%s,%s,%d,%d,%d,%d,%.1f,%d,%d,%d,%d,%d,%d,%s,%d,%s,%d,%d\n" cls
    r.r_scheme r.r_structure r.r_steps r.r_prompt r.r_deferred r.r_shed
    (availability r) r.r_oom_injected r.r_net_faults r.r_churns r.r_crashes
    r.r_recoveries r.r_recovery_steps (chaos_mem_verdict r) r.r_bound
    (chaos_oracle_verdict r)
    r.r_oracle.Chaos.Oracle.checked r.r_oracle.Chaos.Oracle.gen_trips

let chaos_emit cls (r : Chaos.Engine.result) =
  List.iter (fun l -> Format.printf "  %s@." l) r.Chaos.Engine.r_trace;
  List.iter
    (fun f -> Format.printf "  ! %s@." f)
    r.Chaos.Engine.r_oracle.Chaos.Oracle.failures;
  Format.printf "%s@." (chaos_row_string cls r);
  (match !csv_channel with
  | Some oc ->
      chaos_csv_row oc cls r;
      flush oc
  | None -> ());
  match !prom_channel with
  | Some oc ->
      Printf.fprintf oc
        "# chaos class=%s scheme=%s structure=%s\n\
         chaos_peak_ctl_unreclaimed %d\n\
         chaos_recovery_ns %d\n\
         chaos_wall_seconds %.3f\n"
        cls r.Chaos.Engine.r_scheme r.Chaos.Engine.r_structure
        r.Chaos.Engine.r_peak_ctl r.Chaos.Engine.r_recovery_ns
        r.Chaos.Engine.r_wall_s;
      flush oc
  | None -> ()

let chaos_run_one ~cls ~scheme_name ~structure ~shards ~bound plan =
  let scheme = Registry.find_scheme scheme_name in
  let cfg =
    {
      (Chaos.Engine.default_cfg ~scheme ~structure) with
      Chaos.Engine.shards;
      bound;
    }
  in
  let r = Chaos.Engine.run cfg plan in
  (String.concat "\n" r.Chaos.Engine.r_trace, chaos_row_string cls r, r)

let chaos_plot cls rows =
  let downsample series =
    let n = Array.length series in
    let stride = max 1 (n / 64) in
    let pts = ref [] in
    let i = ref 0 in
    while !i < n do
      pts := (float_of_int !i, float_of_int series.(!i)) :: !pts;
      i := !i + stride
    done;
    List.rev !pts
  in
  print_string
    (Plot.render
       ~title:(Printf.sprintf "chaos %s — ctl unreclaimed over time" cls)
       ~ylabel:"blocks" ~xlabel:"step"
       (List.rev_map
          (fun (label, r) ->
            { Plot.label; points = downsample r.Chaos.Engine.r_series })
          rows));
  print_newline ()

let run_chaos ~ds ~schemes ~classes ~steps ~seed ~bound ~shards ~smoke ~plot =
  let structure =
    Registry.find_structure (match ds with "all" -> "hashmap" | d -> d)
  in
  let detect =
    (Chaos.Engine.default_cfg
       ~scheme:(Registry.find_scheme "ebr")
       ~structure)
      .Chaos.Engine.detect
  in
  if smoke then begin
    (* The CI gate: the fixed crash+oom+net plan, each scheme run
       twice.  Replays must be byte-identical; the robust scheme must
       keep its control-plane backlog bounded across the crash window
       while EBR must not; the oracle must pass for both. *)
    let plan = Chaos.Fault.smoke ~nshards:shards ~detect in
    Format.printf
      "## chaos --smoke (fixed plan: crash + oom + net, %d steps, detect \
       %d, bound %d, %s)@."
      plan.Chaos.Fault.steps detect bound structure.Registry.d_name;
    chaos_pp_header ();
    let problems = ref [] in
    let check c msg = if not c then problems := msg :: !problems in
    let run name =
      let t1, row1, r1 =
        chaos_run_one ~cls:"smoke" ~scheme_name:name ~structure ~shards ~bound
          plan
      in
      let t2, row2, _ =
        chaos_run_one ~cls:"smoke" ~scheme_name:name ~structure ~shards ~bound
          plan
      in
      check
        (t1 = t2 && row1 = row2)
        (name ^ ": replay of the same plan diverged");
      chaos_emit "smoke" r1;
      r1
    in
    let robust = run "hyalines" in
    let crystalline = run "crystalline" in
    let ebr = run "ebr" in
    check
      (robust.Chaos.Engine.r_mem_bounded = Some true)
      "hyaline-s: ctl backlog exceeded the bound across the crash window";
    check robust.Chaos.Engine.r_oracle.Chaos.Oracle.ok "hyaline-s: oracle failed";
    check
      (crystalline.Chaos.Engine.r_mem_bounded = Some true)
      "crystalline: ctl backlog exceeded the bound across the crash window";
    check crystalline.Chaos.Engine.r_oracle.Chaos.Oracle.ok
      "crystalline: oracle failed";
    check
      (ebr.Chaos.Engine.r_mem_bounded = Some false)
      "ebr: expected the abandoned bracket to pin the ctl backlog past the \
       bound";
    check ebr.Chaos.Engine.r_oracle.Chaos.Oracle.ok "ebr: oracle failed";
    if !problems <> [] then begin
      List.iter
        (fun m -> Format.eprintf "chaos smoke FAILED: %s@." m)
        (List.rev !problems);
      exit 1
    end
    else
      Format.printf
        "chaos smoke ok: replays identical, %s + %s bounded + oracle pass, \
         %s unbounded as expected@."
        robust.Chaos.Engine.r_scheme crystalline.Chaos.Engine.r_scheme
        ebr.Chaos.Engine.r_scheme
  end
  else
    List.iter
      (fun cls_name ->
        let classes =
          match Chaos.Fault.classes_named cls_name with
          | Some c -> c
          | None ->
              Format.eprintf "unknown fault class %S (try %s)@." cls_name
                (String.concat ", " Chaos.Fault.class_names);
              exit 2
        in
        let events = max 3 (steps / 80) in
        let plan =
          Chaos.Fault.generate ~seed ~steps ~nshards:shards ~classes ~events
            ~crash_window:(detect + 48)
        in
        Format.printf
          "## chaos %s (seed %d, %d steps, %d events, bound %d, %s)@."
          cls_name seed steps
          (List.length plan.Chaos.Fault.events)
          bound structure.Registry.d_name;
        chaos_pp_header ();
        let rows = ref [] in
        List.iter
          (fun scheme_name ->
            let _, _, r =
              chaos_run_one ~cls:cls_name ~scheme_name ~structure ~shards
                ~bound plan
            in
            chaos_emit cls_name r;
            rows := (r.Chaos.Engine.r_scheme, r) :: !rows)
          schemes;
        Format.printf "@.";
        if plot then chaos_plot cls_name (List.rev !rows))
      classes

(* ------------------------------------------------------------------ *)
(* `experiments replicate` — the lib/replica matrix, per scheme:
     A. WAL cost: closed-loop write-heavy throughput with the ack hook
        disabled vs a Primary group-committing to a mem store.
     B. The snapshot long-reader adversary: a gated snapshot holds its
        bracket while churn retires nodes under it; the row is the
        shard's unreclaimed ceiling (EBR balloons, Hyaline-S stays
        bounded — the serving-path twin of fig10a).
     C. Replication lag: an in-process follower chases the committed
        record stream under load; max observed lag + apply p99, then a
        convergence sweep.
     D. Failover: acked history -> snapshots+truncation -> follower ->
        more acked history -> torn group commit kills shard 0 ->
        process death -> confirmed-death detection -> promotion from
        the shared store.  Judge: Chaos.Oracle.replay_state of exactly
        the acked history, compared byte-for-byte against both the
        promoted follower and a fresh primary recovered from the same
        store.
   Everything runs on the deterministic mem store, so the torn tail is
   exact and recovery/truncation byte counts can be asserted. *)

let rep_csv_header = "phase,scheme,structure,shards,metric,value\n"

let rep_emit ~phase ~scheme ~structure ~shards metrics =
  (match !csv_channel with
  | Some oc ->
      List.iter
        (fun (metric, v) ->
          Printf.fprintf oc "%s,%s,%s,%d,%s,%.1f\n" phase scheme structure
            shards metric v)
        metrics;
      flush oc
  | None -> ());
  match !prom_channel with
  | Some oc ->
      List.iter
        (fun (metric, v) ->
          Printf.fprintf oc "replicate_%s{phase=%S,scheme=%S} %.1f\n" metric
            phase scheme v)
        metrics;
      flush oc
  | None -> ()

let rep_throughput ~scheme ~structure_name ~shards ~clients ~duration ~seed
    ~delta =
  let structure = Registry.find_structure structure_name in
  let dist = Keydist.uniform ~range:4096 in
  let svc_off =
    Service.Shard.create ~structure ~scheme
      { Service.Shard.default_config with Service.Shard.shards; clients; seed }
  in
  let off =
    Service.Loadgen.run svc_off ~mode:Service.Loadgen.Closed ~clients ~duration
      ~dist ~mix:Service.Loadgen.write_heavy ~seed ()
  in
  svc_off.Service.Shard.stop ();
  let store, _ = Replica.Store.Mem.create () in
  let p, _ =
    Replica.Primary.create ~structure ~scheme ~delta
      { Service.Shard.default_config with Service.Shard.shards; clients; seed }
      ~store ()
  in
  let fsync_sum () =
    Array.fold_left (fun a w -> a + Replica.Wal.fsyncs w) 0 p.Replica.Primary.wals
  in
  let before = fsync_sum () in
  let on =
    Service.Loadgen.run p.Replica.Primary.svc ~mode:Service.Loadgen.Closed
      ~clients ~duration ~dist ~mix:Service.Loadgen.write_heavy ~seed ()
  in
  let fsyncs = fsync_sum () - before in
  let fsync_p99 =
    Array.fold_left
      (fun a w -> max a (Obs.Hist.percentile (Replica.Wal.fsync_hist w) 0.99))
      0 p.Replica.Primary.wals
  in
  Replica.Primary.stop p;
  (off, on, fsyncs, fsync_p99)

(* Phase B: hold a snapshot bracket open at the gate while fresh-key
   put/del churn retires nodes in the same shard, then read the
   shard's unreclaimed backlog BEFORE releasing the reader. *)
let rep_snapshot_reader ~scheme ~structure_name ~shards ~churn =
  let structure = Registry.find_structure structure_name in
  let svc =
    Service.Shard.create ~structure ~scheme
      { Service.Shard.default_config with Service.Shard.shards; clients = 2 }
  in
  let prefill = ref 0 in
  let k = ref 0 in
  while !prefill < 64 do
    if svc.Service.Shard.shard_of_key !k = 0 then begin
      ignore
        (Service.Shard.call svc ~tid:0
           (Service.Codec.Put { key = !k; value = !k }));
      incr prefill
    end;
    incr k
  done;
  let entered = Atomic.make false in
  let release = Atomic.make false in
  let gate i =
    if i = 0 then begin
      Atomic.set entered true;
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done
    end
  in
  let snap =
    Domain.spawn (fun () -> svc.Service.Shard.snapshot ~shard:0 ~gate)
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  let kk = ref 1_000_000 in
  let churned = ref 0 in
  while !churned < churn do
    if svc.Service.Shard.shard_of_key !kk = 0 then begin
      ignore
        (Service.Shard.call svc ~tid:0
           (Service.Codec.Put { key = !kk; value = 1 }));
      ignore (Service.Shard.call svc ~tid:0 (Service.Codec.Del !kk));
      churned := !churned + 2
    end;
    incr kk
  done;
  let unr =
    Smr.Stats.unreclaimed_of
      (Smr.Stats.snapshot (List.nth (svc.Service.Shard.data_stats ()) 0))
  in
  Atomic.set release true;
  ignore (Domain.join snap);
  svc.Service.Shard.stop ();
  unr

(* Phase B': the same stalled adversary, holding a DELTA snapshot's
   bracket open.  The write-set traversal takes the same tid-1 bracket
   as the full fold, so a stalled delta reader must be exactly as
   survivable: bounded under the robust schemes, a balloon under
   EBR. *)
let rep_stalled_delta_reader ~scheme ~structure_name ~shards ~churn =
  let structure = Registry.find_structure structure_name in
  let store, _ = Replica.Store.Mem.create () in
  let p, _ =
    Replica.Primary.create ~structure ~scheme ~delta:true
      { Service.Shard.default_config with Service.Shard.shards; clients = 2 }
      ~store ()
  in
  let svc = p.Replica.Primary.svc in
  let prefill = ref 0 in
  let k = ref 0 in
  while !prefill < 64 do
    if svc.Service.Shard.shard_of_key !k = 0 then begin
      ignore
        (Service.Shard.call svc ~tid:0
           (Service.Codec.Put { key = !k; value = !k }));
      incr prefill
    end;
    incr k
  done;
  ignore (Replica.Primary.snapshot_shard p ~shard:0 ~mode:`Full ());
  (* Dirty a handful of shard-0 keys so the delta has a write set to
     park in. *)
  let dirtied = ref 0 in
  let kd = ref 0 in
  while !dirtied < 8 do
    if svc.Service.Shard.shard_of_key !kd = 0 then begin
      ignore
        (Service.Shard.call svc ~tid:0 (Service.Codec.Put { key = !kd; value = 1 }));
      incr dirtied
    end;
    incr kd
  done;
  let entered = Atomic.make false in
  let release = Atomic.make false in
  let gate i =
    if i = 0 then begin
      Atomic.set entered true;
      while not (Atomic.get release) do
        Domain.cpu_relax ()
      done
    end
  in
  let snap =
    Domain.spawn (fun () ->
        Replica.Primary.snapshot_shard p ~shard:0 ~gate ~truncate:false
          ~mode:`Delta ())
  in
  while not (Atomic.get entered) do
    Domain.cpu_relax ()
  done;
  let kk = ref 2_000_000 in
  let churned = ref 0 in
  while !churned < churn do
    if svc.Service.Shard.shard_of_key !kk = 0 then begin
      ignore
        (Service.Shard.call svc ~tid:0
           (Service.Codec.Put { key = !kk; value = 1 }));
      ignore (Service.Shard.call svc ~tid:0 (Service.Codec.Del !kk));
      churned := !churned + 2
    end;
    incr kk
  done;
  let unr =
    Smr.Stats.unreclaimed_of
      (Smr.Stats.snapshot (List.nth (svc.Service.Shard.data_stats ()) 0))
  in
  Atomic.set release true;
  ignore (Domain.join snap);
  Replica.Primary.stop p;
  unr

(* Phase E: delta amplification.  A delta-tracking primary over a
   large key range with a small write set; the snapshot gate counts
   traversal visits, so full-gate-calls / delta-gate-calls IS the
   amplification factor the incremental chain removes.  The delta runs
   first (it consumes the dirty sets), the forced full second. *)
let rep_delta_amplification ~scheme ~structure_name ~shards ~keys ~dirty =
  let structure = Registry.find_structure structure_name in
  let store, _ = Replica.Store.Mem.create () in
  let p, _ =
    Replica.Primary.create ~structure ~scheme ~delta:true
      ~dirty_cap:(1 lsl 16)
      { Service.Shard.default_config with Service.Shard.shards; clients = 2 }
      ~store ()
  in
  let svc = p.Replica.Primary.svc in
  for k = 0 to keys - 1 do
    ignore
      (Service.Shard.call svc ~tid:0 (Service.Codec.Put { key = k; value = k }))
  done;
  for shard = 0 to shards - 1 do
    ignore (Replica.Primary.snapshot_shard p ~shard ~mode:`Full ())
  done;
  let stride = max 1 (keys / max 1 dirty) in
  let dirtied = ref 0 in
  let k = ref 0 in
  while !dirtied < dirty && !k < keys do
    ignore
      (Service.Shard.call svc ~tid:0
         (Service.Codec.Put { key = !k; value = !k + 1 }));
    incr dirtied;
    k := !k + stride
  done;
  let count mode =
    let ops = ref 0 in
    for shard = 0 to shards - 1 do
      ignore
        (Replica.Primary.snapshot_shard p ~shard
           ~gate:(fun _ -> incr ops)
           ~truncate:false ~mode ())
    done;
    !ops
  in
  let delta_ops = count `Delta in
  let full_ops = count `Full in
  Replica.Primary.stop p;
  (full_ops, delta_ops)

let rep_pull_of p ~shard ~from ~max =
  match
    Replica.Primary.handle p (Service.Codec.Rep_pull { shard; from; max })
  with
  | Some r -> r
  | None -> Service.Codec.Error "pull: not a replication request"

let rep_lag ~scheme ~structure_name ~shards ~clients ~duration ~seed ~delta =
  let structure = Registry.find_structure structure_name in
  let store, _ = Replica.Store.Mem.create () in
  let p, _ =
    Replica.Primary.create ~structure ~scheme ~delta
      { Service.Shard.default_config with Service.Shard.shards; clients; seed }
      ~store ()
  in
  let f, _ =
    Replica.Follower.create ~structure ~scheme
      { Service.Shard.default_config with Service.Shard.shards; clients = 2; seed }
      ~pull:(rep_pull_of p) ()
  in
  let running = Atomic.make true in
  let max_lag = Atomic.make 0 in
  let samples = ref [] in
  let stepper =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while Atomic.get running do
          for shard = 0 to shards - 1 do
            ignore (Replica.Follower.step f ~shard ())
          done;
          let l = Array.fold_left max 0 (Replica.Follower.lag f) in
          if l > Atomic.get max_lag then Atomic.set max_lag l;
          incr i;
          if !i mod 64 = 0 then samples := (!i, l) :: !samples;
          Domain.cpu_relax ()
        done)
  in
  let res =
    Service.Loadgen.run p.Replica.Primary.svc ~mode:Service.Loadgen.Closed
      ~clients ~duration
      ~dist:(Keydist.uniform ~range:4096)
      ~mix:Service.Loadgen.write_heavy ~seed ()
  in
  Atomic.set running false;
  Domain.join stepper;
  ignore (Replica.Follower.sync f);
  let converged = ref true in
  for shard = 0 to shards - 1 do
    if Replica.Primary.sweep p ~shard <> Replica.Follower.sweep f ~shard then
      converged := false
  done;
  let apply_p99 = Obs.Hist.percentile (Replica.Follower.apply_hist f) 0.99 in
  Replica.Primary.stop p;
  Replica.Follower.stop f;
  (res, Atomic.get max_lag, apply_p99, !converged, List.rev !samples)

type rep_fo = {
  fo_ops : int;
  fo_confirm_polls : int;
  fo_torn_bytes : int;
  fo_caught_up : int;
  fo_late_acks : int;
  fo_promoted_ok : bool;
  fo_recovered_ok : bool;
  fo_boot2_truncated : int;
}

let rep_failover ~scheme ~structure_name ~shards ~rounds ~seed ~delta
    ~snap_every =
  let structure = Registry.find_structure structure_name in
  let store, _ = Replica.Store.Mem.create () in
  let cfg =
    { Service.Shard.default_config with Service.Shard.shards; clients = 4; seed }
  in
  let p, _ = Replica.Primary.create ~structure ~scheme ~delta cfg ~store () in
  let svc = p.Replica.Primary.svc in
  let rng = Prims.Rng.create ~seed:(seed + 99) in
  let ops = ref [] in
  let range = 512 in
  (* Closed single-driver loop: the submission order is a
     linearization, so Oracle.replay_state of [ops] is exact. *)
  let rounds_done = ref 0 in
  (* [--snap-every N]: a snapshot cadence during the pre-follower
     history (with [--delta] it publishes base+delta chains), so the
     recovery below bootstraps through whatever chain shape the
     cadence left.  The cadence stops once the follower exists: a
     truncation past its pull window is a retention question, not a
     failover one. *)
  let drive ?(snap = false) n =
    for _ = 1 to n do
      let key = Prims.Rng.below rng range in
      let req =
        match Prims.Rng.below rng 10 with
        | 0 | 1 | 2 | 3 ->
            Service.Codec.Put { key; value = Prims.Rng.below rng 1000 }
        | 4 | 5 -> Service.Codec.Del key
        | 6 ->
            Service.Codec.Cas
              {
                key;
                expected = Prims.Rng.below rng 1000;
                desired = Prims.Rng.below rng 1000;
              }
        | _ -> Service.Codec.Get key
      in
      let reply = Service.Shard.call svc ~tid:0 req in
      ops := (req, reply) :: !ops;
      incr rounds_done;
      if snap && snap_every > 0 && !rounds_done mod snap_every = 0 then
        for shard = 0 to shards - 1 do
          ignore (Replica.Primary.snapshot_shard p ~shard ())
        done
    done
  in
  let third = max 1 (rounds / 3) in
  drive ~snap:true third;
  (* Mid-history snapshots with truncation: later bootstraps must go
     snapshot-then-log, and Rep_pull from 0 is now legitimately
     Too_old. *)
  for shard = 0 to shards - 1 do
    ignore (Replica.Primary.snapshot_shard p ~shard ())
  done;
  drive third;
  (* Follower cold-starts from the shared store (snapshot + read-only
     log scan), then catches the stream up over pulls. *)
  let f, _ =
    Replica.Follower.create ~structure ~scheme
      { cfg with Service.Shard.clients = 2 }
      ~pull:(rep_pull_of p) ~store ()
  in
  ignore (Replica.Follower.sync f);
  (* Acked history the follower has NOT pulled: promotion must recover
     it from the shared store, not lose it. *)
  drive (max 1 (rounds - (2 * third)));
  (* Arm the torn commit and throw un-ackable work at shard 0: its
     next group commit dies writing the final record halfway. *)
  Replica.Primary.arm_torn_commit p ~shard:0;
  let late_acks = Atomic.make 0 in
  let submitted = ref 0 in
  let kk = ref (range + 1) in
  while !submitted < 32 do
    if svc.Service.Shard.shard_of_key !kk = 0 then begin
      incr submitted;
      svc.Service.Shard.submit ~tid:1
        (Service.Codec.Put { key = !kk; value = !kk })
        (function
          | Service.Codec.Shed | Service.Codec.Error _ ->
              (* shed or failed at stop: correctly never acked *)
              ()
          | _ -> Atomic.incr late_acks)
    end;
    incr kk
  done;
  let spins = ref 0 in
  while svc.Service.Shard.consumer_alive 0 && !spins < 50_000_000 do
    incr spins;
    Domain.cpu_relax ()
  done;
  if svc.Service.Shard.consumer_alive 0 then
    failwith "replicate: armed shard did not crash on its torn commit";
  Replica.Primary.kill p;
  let mon =
    Replica.Failover.monitor
      ~alive:(fun () -> Replica.Primary.alive p)
      ~heartbeat:svc.Service.Shard.heartbeat ~nshards:shards ()
  in
  let polls = ref 0 in
  while (not (Replica.Failover.poll mon)) && !polls < 10_000 do
    incr polls;
    Unix.sleepf 0.001
  done;
  if not (Replica.Failover.confirmed mon) then
    failwith "replicate: primary death was never confirmed";
  let prom = Replica.Failover.promote f ~store in
  let promoted_state =
    List.concat
      (List.init shards (fun shard -> Replica.Follower.sweep f ~shard))
    |> List.sort compare
  in
  (* A fresh primary recovered from the same store must agree too —
     and its recovery must truncate exactly the bytes the promotion
     scan reported as torn. *)
  let p2, boot2 = Replica.Primary.create ~structure ~scheme cfg ~store () in
  let recovered_state =
    List.concat
      (List.init shards (fun shard -> Replica.Primary.sweep p2 ~shard))
    |> List.sort compare
  in
  Replica.Primary.stop p2;
  Replica.Primary.stop p;
  Replica.Follower.stop f;
  let expected = Chaos.Oracle.replay_state ~ops:(List.rev !ops) in
  {
    fo_ops = List.length !ops;
    fo_confirm_polls =
      (match Replica.Failover.confirmed_at mon with Some n -> n | None -> -1);
    fo_torn_bytes = Array.fold_left ( + ) 0 prom.Replica.Failover.p_torn_bytes;
    fo_caught_up = Array.fold_left ( + ) 0 prom.Replica.Failover.p_caught_up;
    fo_late_acks = Atomic.get late_acks;
    fo_promoted_ok = promoted_state = expected;
    fo_recovered_ok = recovered_state = expected;
    fo_boot2_truncated =
      Array.fold_left
        (fun a (r : Replica.Wal.recovery) -> a + r.Replica.Wal.r_truncated_bytes)
        0 boot2.Replica.Primary.b_recovery;
  }

let run_replicate ~sc ~ds ~schemes ~shards ~smoke ~plot ~snap_every ~delta =
  let structure_name = match ds with "all" -> "hashmap" | d -> d in
  let clients = 8 in
  let seed = 4242 in
  let duration = if smoke then 0.15 else Float.max 0.3 sc.Figures.duration in
  let churn = if smoke then 1500 else 4000 in
  let bound = churn / 4 in
  let rounds = if smoke then 1200 else 3000 in
  Format.printf
    "## replicate (%s, %d shards, mem store, churn %d, %d acked rounds%s%s%s)@."
    structure_name shards churn rounds
    (if delta then ", delta snapshots" else "")
    (if snap_every > 0 then Printf.sprintf ", snap-every %d" snap_every else "")
    (if smoke then ", smoke" else "");
  let problems = ref [] in
  let check c msg = if not c then problems := msg :: !problems in
  (* Delta amplification is a property of the snapshot machinery, not
     of the reclamation scheme: measure it once, in snapshot-traversal
     gate calls (the unit both paths share), before the scheme loop. *)
  if delta then begin
    let akeys = if smoke then 20_000 else 100_000 in
    let adirty = if smoke then 200 else 1_000 in
    let full_ops, delta_ops =
      rep_delta_amplification
        ~scheme:(Registry.find_scheme (List.hd schemes))
        ~structure_name ~shards ~keys:akeys ~dirty:adirty
    in
    Format.printf
      "delta amplification: %d keys / %d dirty -> full %d gate calls, delta \
       %d gate calls (%.1fx)@."
      akeys adirty full_ops delta_ops
      (float_of_int full_ops /. float_of_int (max 1 delta_ops));
    check
      (delta_ops * 10 < full_ops)
      (Printf.sprintf
         "delta snapshot cost %d gate calls vs %d for full traversal — not \
          under the 10%% amplification bound"
         delta_ops full_ops);
    rep_emit ~phase:"delta" ~scheme:(List.hd schemes)
      ~structure:structure_name ~shards
      [
        ("amp_keys", float_of_int akeys);
        ("amp_dirty", float_of_int adirty);
        ("full_gate_calls", float_of_int full_ops);
        ("delta_gate_calls", float_of_int delta_ops);
      ]
  end;
  Format.printf "%-18s %8s %8s %7s %9s %12s %9s %8s %7s %6s %6s %3s@." "scheme"
    "off-Kops" "on-Kops" "fsyncs" "fsync-p99" "snap-max-unr" "delta-unr"
    "max-lag" "caught" "polls" "torn" "ok";
  let snap_unr = ref [] in
  let delta_unr = ref [] in
  let lag_series = ref [] in
  List.iter
    (fun scheme_name ->
      let scheme = Registry.find_scheme scheme_name in
      let off, on, fsyncs, fsync_p99 =
        rep_throughput ~scheme ~structure_name ~shards ~clients ~duration ~seed
          ~delta
      in
      let unr = rep_snapshot_reader ~scheme ~structure_name ~shards ~churn in
      snap_unr := (scheme_name, unr) :: !snap_unr;
      (* Same adversary, delta flavor: the parked reader is inside a
         dirty-set-driven delta traversal instead of a full sweep. *)
      let dunr =
        if delta then
          rep_stalled_delta_reader ~scheme ~structure_name ~shards ~churn
        else 0
      in
      if delta then delta_unr := (scheme_name, dunr) :: !delta_unr;
      let _lres, max_lag, apply_p99, converged, samples =
        rep_lag ~scheme ~structure_name ~shards ~clients ~duration ~seed ~delta
      in
      check converged
        (scheme_name ^ ": follower state diverged from the primary after sync");
      lag_series :=
        {
          Plot.label = scheme_name;
          points =
            List.map (fun (i, l) -> (float_of_int i, float_of_int l)) samples;
        }
        :: !lag_series;
      let fo =
        rep_failover ~scheme ~structure_name ~shards ~rounds ~seed ~delta
          ~snap_every
      in
      check (fo.fo_late_acks = 0)
        (scheme_name ^ ": non-durable work was acknowledged");
      check fo.fo_promoted_ok
        (scheme_name ^ ": promoted follower diverged from the oracle replay");
      check fo.fo_recovered_ok
        (scheme_name ^ ": recovered primary diverged from the oracle replay");
      check (fo.fo_torn_bytes > 0)
        (scheme_name ^ ": the torn commit left no torn tail");
      check
        (fo.fo_boot2_truncated = fo.fo_torn_bytes)
        (scheme_name
       ^ ": recovery truncated a different byte count than the scan observed");
      Format.printf "%-18s %8.1f %8.1f %7d %9s %12d %9s %8d %7d %6d %6d %3s@."
        scheme_name
        (off.Service.Loadgen.throughput /. 1e3)
        (on.Service.Loadgen.throughput /. 1e3)
        fsyncs
        (Plot.fmt_ns fsync_p99)
        unr
        (if delta then string_of_int dunr else "-")
        max_lag fo.fo_caught_up fo.fo_confirm_polls fo.fo_torn_bytes
        (if
           fo.fo_promoted_ok && fo.fo_recovered_ok && fo.fo_late_acks = 0
           && converged
         then "ok"
         else "DIV");
      rep_emit ~phase:"throughput" ~scheme:scheme_name ~structure:structure_name
        ~shards
        [
          ("off_kops", off.Service.Loadgen.throughput /. 1e3);
          ("on_kops", on.Service.Loadgen.throughput /. 1e3);
          ("fsyncs", float_of_int fsyncs);
          ("fsync_p99_ns", float_of_int fsync_p99);
        ];
      rep_emit ~phase:"snapshot" ~scheme:scheme_name ~structure:structure_name
        ~shards
        ([
           ("snap_max_unreclaimed", float_of_int unr);
           ("bound", float_of_int bound);
         ]
        @ if delta then [ ("delta_max_unreclaimed", float_of_int dunr) ] else []);
      rep_emit ~phase:"lag" ~scheme:scheme_name ~structure:structure_name
        ~shards
        [
          ("max_lag_frames", float_of_int max_lag);
          ("apply_p99_ns", float_of_int apply_p99);
          ("converged", if converged then 1.0 else 0.0);
        ];
      rep_emit ~phase:"failover" ~scheme:scheme_name ~structure:structure_name
        ~shards
        [
          ("acked_ops", float_of_int fo.fo_ops);
          ("confirm_polls", float_of_int fo.fo_confirm_polls);
          ("torn_bytes", float_of_int fo.fo_torn_bytes);
          ("caught_up", float_of_int fo.fo_caught_up);
          ("late_acks", float_of_int fo.fo_late_acks);
          ("promoted_oracle_ok", if fo.fo_promoted_ok then 1.0 else 0.0);
          ("recovered_oracle_ok", if fo.fo_recovered_ok then 1.0 else 0.0);
        ])
    schemes;
  Format.printf "@.";
  (* The robustness contrast: the snapshot reader is the paper's
     stalled adversary wearing service clothes.  EBR must blow the
     bound; every robust scheme (Hyaline-S family, Crystalline) must
     stay under it. *)
  let is_robust n =
    let prefix p =
      String.length n >= String.length p && String.sub n 0 (String.length p) = p
    in
    prefix "hyalines" || prefix "crystalline"
  in
  (match List.assoc_opt "ebr" !snap_unr with
  | Some u ->
      check (u > bound)
        (Printf.sprintf
           "ebr: snapshot reader pinned only %d nodes (bound %d) — expected \
            unbounded growth"
           u bound)
  | None -> if smoke then check false "smoke needs ebr in --schemes");
  (match List.filter (fun (n, _) -> is_robust n) !snap_unr with
  | [] ->
      if smoke then
        check false "smoke needs a robust scheme (hyalines/crystalline) in \
                     --schemes"
  | robusts ->
      List.iter
        (fun (n, u) ->
          check (u <= bound)
            (Printf.sprintf
               "%s: snapshot-reader backlog %d exceeded the bound %d" n u
               bound))
        robusts);
  (* The same contrast must survive the new read shape: a reader
     stalled inside a DELTA traversal is still just a stalled reader
     to the reclamation layer. *)
  if delta then begin
    (match List.assoc_opt "ebr" !delta_unr with
    | Some u ->
        check (u > bound)
          (Printf.sprintf
             "ebr: stalled DELTA reader pinned only %d nodes (bound %d) — \
              expected unbounded growth"
             u bound)
    | None -> ());
    List.iter
      (fun (n, u) ->
        check (u <= bound)
          (Printf.sprintf
             "%s: stalled delta-reader backlog %d exceeded the bound %d" n u
             bound))
      (List.filter (fun (n, _) -> is_robust n) !delta_unr)
  end;
  if plot && !lag_series <> [] then begin
    print_string
      (Plot.render ~title:"replicate — follower lag while loaded"
         ~ylabel:"frames" ~xlabel:"stepper sample"
         (List.rev !lag_series));
    print_newline ()
  end;
  if !problems <> [] then begin
    List.iter
      (fun m -> Format.eprintf "replicate%s FAILED: %s@."
          (if smoke then " smoke" else "") m)
      (List.rev !problems);
    exit 1
  end
  else if smoke then
    Format.printf
      "replicate smoke ok: acks durable, torn tails truncated, promoted and \
       recovered states oracle-identical, snapshot reader bounded only under \
       the robust scheme%s@."
      (if delta then
         ", delta snapshots under the 10% amplification bound with the \
          stalled delta reader contrast intact"
       else "")

(* ------------------------------------------------------------------ *)
(* cluster: N consistent-hash members (each a durable Primary wrapped
   in a Cluster.Node, served over the evloop Conn backend), a router
   chasing redirects, live slot migrations under Zipf load, whole-node
   kill/partition faults from a declarative plan, and the robustness
   contrast measured while a migration snapshot reader is parked
   mid-ship. *)

let cluster_csv_header = "phase,scheme,structure,nodes,metric,value\n"

let cluster_emit ~phase ~scheme ~structure ~nodes metrics =
  (match !csv_channel with
  | Some oc ->
      List.iter
        (fun (metric, v) ->
          Printf.fprintf oc "%s,%s,%s,%d,%s,%.1f\n" phase scheme structure
            nodes metric v)
        metrics;
      flush oc
  | None -> ());
  match !prom_channel with
  | Some oc ->
      List.iter
        (fun (metric, v) ->
          Printf.fprintf oc "cluster_%s{phase=%S,scheme=%S} %.1f\n" metric
            phase scheme v)
        metrics;
      flush oc
  | None -> ()

type cluster_res = {
  cr_acked : int;
  cr_kops : float;
  cr_failed : int;  (** routed calls that failed outside any outage *)
  cr_unavailable : int;  (** routed calls that failed during an outage *)
  cr_moved : int;
  cr_shed : int;
  cr_migrations : int;
  cr_snap_kvs : int;
  cr_snap_pages : int;
  cr_catchup_records : int;
  cr_catchup_rounds : int;
  cr_delta_ships : int;
      (** migrations that shipped a delta chain instead of a full copy *)
  cr_snap_unr : int;  (** shard-0 backlog while the snap reader is parked *)
  cr_reboots : int;
  cr_partitions : int;
  cr_table_kept : bool;
  cr_oracle_ok : bool;
}

let cluster_run_one ~scheme_name ~structure_name ~nnodes ~seed ~churn ~nmig
    ~plan =
  let structure = Registry.find_structure structure_name in
  let scheme = Registry.find_scheme scheme_name in
  let nslots = Cluster.Ring.default_nslots in
  let shards = 2 in
  let apply_tid = 5 in
  let keyrange = 256 in
  let cfg =
    { Service.Shard.default_config with Service.Shard.shards; clients = 6; seed }
  in
  let stores = Array.init nnodes (fun _ -> fst (Replica.Store.Mem.create ())) in
  let mk_primary id =
    fst (Replica.Primary.create ~structure ~scheme cfg ~store:stores.(id) ())
  in
  let owners0 =
    Cluster.Ring.assign ~seed ~nslots ~nodes:(List.init nnodes Fun.id)
  in
  let prims = Array.init nnodes mk_primary in
  let nodes =
    Array.mapi
      (fun id p ->
        Cluster.Node.create ~node_id:id ~nslots ~owners:(Array.copy owners0)
          ~apply_tid p)
      prims
  in
  let paths =
    Array.init nnodes (fun id ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "kvcluster-%d-%d.sock" (Unix.getpid ()) id))
  in
  let serve id =
    Service.Conn.serve_unix prims.(id).Replica.Primary.svc ~path:paths.(id)
      ~ext:(Cluster.Node.handle nodes.(id))
      ~ext_defer:Cluster.Node.deferrable ~backend:(`Evloop `Auto) ()
  in
  let servers = Array.init nnodes serve in
  let eps =
    Array.init nnodes (fun id -> Cluster.Router.endpoint ~id ~path:paths.(id))
  in
  let router =
    Cluster.Router.create ~nslots ~endpoints:(Array.to_list eps) ()
  in
  let dist = Keydist.zipf ~range:keyrange () in
  let stop = Atomic.make false in
  let hold = Atomic.make false in
  let parked = Atomic.make false in
  let outage = Atomic.make false in
  let acked = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let unavailable = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  (* One sequential driver: each op is acked before the next is
     issued, so the acked history is a linearization and
     Oracle.replay_state of it is exact.  The hold/parked handshake
     lets the fault injector operate with no request in flight —
     a kill never leaves an applied-but-unacked write to argue about. *)
  let driver =
    Domain.spawn (fun () ->
        let rng = Prims.Rng.create ~seed:(seed + 7) in
        let history = ref [] in
        while not (Atomic.get stop) do
          if Atomic.get hold then begin
            Atomic.set parked true;
            while Atomic.get hold && not (Atomic.get stop) do
              Domain.cpu_relax ()
            done;
            Atomic.set parked false
          end
          else begin
            let key = Keydist.draw dist rng in
            let req =
              match Prims.Rng.below rng 10 with
              | 0 | 1 | 2 | 3 ->
                  Service.Codec.Put { key; value = Prims.Rng.below rng 1000 }
              | 4 | 5 -> Service.Codec.Del key
              | 6 ->
                  Service.Codec.Cas
                    {
                      key;
                      expected = Prims.Rng.below rng 1000;
                      desired = Prims.Rng.below rng 1000;
                    }
              | _ -> Service.Codec.Get key
            in
            match Cluster.Router.call router req with
            | Service.Codec.Error _ | Service.Codec.Shed
            | Service.Codec.Moved _ ->
                if Atomic.get outage then Atomic.incr unavailable
                else Atomic.incr failed
            | reply ->
                history := (req, reply) :: !history;
                Atomic.incr acked
          end
        done;
        List.rev !history)
  in
  let joined = ref false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Atomic.set hold false;
      if not !joined then ignore (Domain.join driver);
      Cluster.Router.close router;
      Array.iter Service.Conn.shutdown servers;
      Array.iter Replica.Primary.stop prims)
    (fun () ->
      let park () =
        Atomic.set hold true;
        while not (Atomic.get parked) do
          Domain.cpu_relax ()
        done
      in
      let release () = Atomic.set hold false in
      let wait_acked n =
        let deadline = Unix.gettimeofday () +. 30. in
        while Atomic.get acked < n && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.001
        done;
        if Atomic.get acked < n then
          failwith "cluster: the routed driver stopped making progress"
      in
      (* Phase 1: routed load builds against the boot table. *)
      wait_acked 200;
      (* Phase 2: migrate the hottest source-owned slots (the Zipf
         head lives on the smallest keys) while the driver keeps
         writing through them. *)
      let mig_slots =
        let seen = Hashtbl.create 8 in
        let acc = ref [] in
        let k = ref 0 in
        while List.length !acc < nmig && !k < 100 * keyrange do
          let s = Cluster.Ring.slot_of_key ~nslots !k in
          if (not (Hashtbl.mem seen s)) && Cluster.Node.owns_slot nodes.(0) s
          then begin
            Hashtbl.add seen s ();
            acc := s :: !acc
          end;
          incr k
        done;
        List.rev !acc
      in
      let mig_stats =
        List.map
          (fun slot ->
            match
              Cluster.Migrate.run ~src:eps.(0) ~dst:eps.(1) ~slot
                ~nshards:shards ~nslots ~router ()
            with
            | Ok s -> s
            | Error e ->
                failwith (Printf.sprintf "cluster: migrating slot %d: %s" slot e))
          mig_slots
      in
      (* Phase 2b: ship the first slot straight back.  Node 0 still
         holds its pre-handoff copy and the handoff token it minted at
         the freeze, and node 1 has tracked every post-grant write in
         the slot's dirty set — so this leg must travel as a delta
         (dirty keys + tombstones over the existing base), not a full
         snapshot.  [mg_delta] records which one actually happened. *)
      let mig_stats =
        match mig_slots with
        | [] -> mig_stats
        | slot :: _ -> (
            match
              Cluster.Migrate.run ~src:eps.(1) ~dst:eps.(0) ~slot
                ~nshards:shards ~nslots ~router ()
            with
            | Ok s -> mig_stats @ [ s ]
            | Error e ->
                failwith
                  (Printf.sprintf "cluster: back-migrating slot %d: %s" slot e))
      in
      (* Phase 3: the robustness window.  A migration's snapshot
         consumer can stall mid-ship (a slow target draining Cl_snap
         pages); the traversal's bracket then pins whatever the scheme
         cannot reclaim.  Park exactly that traversal in-process (over
         the wire a parked gate would stall the transport pump) and
         churn fresh keys through the gated shard via the router, so
         the retirements travel the full cluster data path. *)
      let entered = Atomic.make false in
      let release_snap = Atomic.make false in
      let gate i =
        if i = 0 then begin
          Atomic.set entered true;
          while not (Atomic.get release_snap) do
            Domain.cpu_relax ()
          done
        end
      in
      let svc0 = prims.(0).Replica.Primary.svc in
      let snap =
        Domain.spawn (fun () -> svc0.Service.Shard.snapshot ~shard:0 ~gate)
      in
      let snap_unr =
        Fun.protect
          ~finally:(fun () ->
            Atomic.set release_snap true;
            ignore (Domain.join snap))
          (fun () ->
            while not (Atomic.get entered) do
              Domain.cpu_relax ()
            done;
            let churned = ref 0 in
            let kk = ref 1_000_000 in
            while !churned < churn do
              if
                Cluster.Node.owns_slot nodes.(0)
                  (Cluster.Ring.slot_of_key ~nslots !kk)
                && svc0.Service.Shard.shard_of_key !kk = 0
              then begin
                ignore
                  (Cluster.Router.call router
                     (Service.Codec.Put { key = !kk; value = 1 }));
                ignore (Cluster.Router.call router (Service.Codec.Del !kk));
                churned := !churned + 2
              end;
              incr kk
            done;
            Smr.Stats.unreclaimed_of
              (Smr.Stats.snapshot
                 (List.nth (svc0.Service.Shard.data_stats ()) 0)))
      in
      (* Phase 4: whole-node faults.  Virtual time is the acked-op
         counter; each event parks the driver, performs the surgery
         with nothing in flight, and releases.  A kill reboots from
         the node's own store — WAL recovery plus the persisted
         ownership table; a partition only tears the transport down
         and back up. *)
      let base = Atomic.get acked in
      let reboots = ref 0 in
      let partitions = ref 0 in
      let table_kept = ref true in
      List.iter
        (fun (e : Chaos.Fault.node_event) ->
          let n = e.n_node in
          let d =
            match e.n_kind with
            | Chaos.Fault.Node_kill d | Chaos.Fault.Node_partition d -> d
          in
          wait_acked (base + e.n_at);
          park ();
          Atomic.set outage true;
          let pre_owners = Cluster.Node.owners nodes.(n) in
          let pre_version = Cluster.Node.version nodes.(n) in
          (match e.n_kind with
          | Chaos.Fault.Node_kill _ ->
              Service.Conn.shutdown servers.(n);
              Replica.Primary.kill prims.(n);
              Replica.Primary.stop prims.(n)
          | Chaos.Fault.Node_partition _ -> Service.Conn.shutdown servers.(n));
          release ();
          wait_acked (base + e.n_at + d);
          park ();
          (match e.n_kind with
          | Chaos.Fault.Node_kill _ ->
              incr reboots;
              prims.(n) <- mk_primary n;
              nodes.(n) <-
                Cluster.Node.create ~node_id:n ~nslots
                  ~owners:(Array.make nslots 0) ~apply_tid prims.(n);
              if
                Cluster.Node.owners nodes.(n) <> pre_owners
                || Cluster.Node.version nodes.(n) <> pre_version
              then table_kept := false
          | Chaos.Fault.Node_partition _ -> incr partitions);
          servers.(n) <- serve n;
          Atomic.set outage false;
          release ())
        plan;
      (* Tail load with the cluster whole again, then the merged-history
         oracle check: replay the acked history sequentially and compare
         every key's value as the cluster serves it now. *)
      let plan_end =
        List.fold_left
          (fun a (e : Chaos.Fault.node_event) ->
            let d =
              match e.n_kind with
              | Chaos.Fault.Node_kill d | Chaos.Fault.Node_partition d -> d
            in
            max a (e.n_at + d))
          0 plan
      in
      wait_acked (base + plan_end + 50);
      Atomic.set stop true;
      let history = Domain.join driver in
      joined := true;
      let dt = Unix.gettimeofday () -. t0 in
      let expected = Chaos.Oracle.replay_state ~ops:history in
      let final =
        List.filter_map
          (fun k ->
            match Cluster.Router.call router (Service.Codec.Get k) with
            | Service.Codec.Value v -> Some (k, v)
            | Service.Codec.Not_found -> None
            | r ->
                failwith
                  (Printf.sprintf "cluster: final get %d answered %s" k
                     (Service.Codec.reply_to_string r)))
          (List.init keyrange Fun.id)
      in
      let sum f = List.fold_left (fun a s -> a + f s) 0 mig_stats in
      {
        cr_acked = List.length history;
        cr_kops = float_of_int (List.length history) /. dt /. 1e3;
        cr_failed = Atomic.get failed;
        cr_unavailable = Atomic.get unavailable;
        cr_moved = Cluster.Router.moved_seen router;
        cr_shed = Cluster.Router.shed_seen router;
        cr_migrations = List.length mig_stats;
        cr_snap_kvs = sum (fun s -> s.Cluster.Migrate.mg_snap_kvs);
        cr_snap_pages = sum (fun s -> s.Cluster.Migrate.mg_snap_pages);
        cr_catchup_records = sum (fun s -> s.Cluster.Migrate.mg_catchup_records);
        cr_catchup_rounds = sum (fun s -> s.Cluster.Migrate.mg_catchup_rounds);
        cr_delta_ships =
          List.length
            (List.filter (fun s -> s.Cluster.Migrate.mg_delta) mig_stats);
        cr_snap_unr = snap_unr;
        cr_reboots = !reboots;
        cr_partitions = !partitions;
        cr_table_kept = !table_kept;
        cr_oracle_ok = expected = final;
      })

let run_cluster ~ds ~schemes ~nnodes ~seed ~smoke =
  if nnodes < 2 then begin
    Format.eprintf "cluster needs at least 2 nodes (--nodes)@.";
    exit 2
  end;
  let structure_name = match ds with "all" -> "hashmap" | d -> d in
  let churn = if smoke then 1200 else 4000 in
  let bound = churn / 4 in
  let nmig = if smoke then 2 else 4 in
  (* The smoke plan is fixed by hand so CI always exercises both fault
     shapes: the migration target dies (the grant must survive its
     reboot) and the bulk owner partitions (availability dips, nothing
     to recover). *)
  let plan =
    if smoke then
      [
        { Chaos.Fault.n_at = 40; n_node = 1; n_kind = Chaos.Fault.Node_kill 60 };
        {
          Chaos.Fault.n_at = 160;
          n_node = 0;
          n_kind = Chaos.Fault.Node_partition 60;
        };
      ]
    else
      Chaos.Fault.node_plan ~seed:(seed + 13) ~steps:600 ~nnodes ~events:3
        ~outage:80
  in
  Format.printf
    "## cluster (%s, %d nodes x 2 shards, %d slots, zipf, %d migrations, \
     churn %d%s)@."
    structure_name nnodes Cluster.Ring.default_nslots nmig churn
    (if smoke then ", smoke" else "");
  List.iter
    (fun e -> Format.printf "   %s@." (Chaos.Fault.node_event_to_string e))
    plan;
  Format.printf "%-18s %6s %7s %5s %7s %6s %5s %8s %5s %7s %8s %4s %4s %3s@."
    "scheme" "Kops" "acked" "fail" "unavail" "moved" "shed" "snap-kvs"
    "delta" "catchup" "snap-unr" "reb" "part" "ok";
  let problems = ref [] in
  let check c msg = if not c then problems := msg :: !problems in
  let has_kill =
    List.exists
      (fun (e : Chaos.Fault.node_event) ->
        match e.n_kind with Chaos.Fault.Node_kill _ -> true | _ -> false)
      plan
  in
  let snap_unr = ref [] in
  List.iter
    (fun scheme_name ->
      let r =
        cluster_run_one ~scheme_name ~structure_name ~nnodes ~seed ~churn
          ~nmig ~plan
      in
      snap_unr := (scheme_name, r.cr_snap_unr) :: !snap_unr;
      check (r.cr_failed = 0)
        (Printf.sprintf
           "%s: %d routed calls failed outside an outage window" scheme_name
           r.cr_failed);
      check r.cr_oracle_ok
        (scheme_name
       ^ ": cluster state diverged from the oracle replay of the acked history");
      check r.cr_table_kept
        (scheme_name ^ ": a rebooted node lost its persisted ownership table");
      check (r.cr_snap_kvs > 0)
        (scheme_name ^ ": migration bootstrap shipped no bindings");
      check
        (r.cr_catchup_rounds >= r.cr_migrations)
        (scheme_name ^ ": migrations ran without catch-up rounds");
      check
        ((not has_kill) || r.cr_reboots >= 1)
        (scheme_name ^ ": the plan's kill never rebooted a node");
      check (r.cr_delta_ships >= 1)
        (scheme_name
       ^ ": the back-migration shipped a full copy where the far side held \
          the matching base (expected a delta chain)");
      Format.printf
        "%-18s %6.1f %7d %5d %7d %6d %5d %8d %5d %7d %8d %4d %4d %3s@."
        scheme_name r.cr_kops r.cr_acked r.cr_failed r.cr_unavailable
        r.cr_moved r.cr_shed r.cr_snap_kvs r.cr_delta_ships
        r.cr_catchup_records r.cr_snap_unr r.cr_reboots r.cr_partitions
        (if r.cr_failed = 0 && r.cr_oracle_ok && r.cr_table_kept then "ok"
         else "DIV");
      cluster_emit ~phase:"route" ~scheme:scheme_name ~structure:structure_name
        ~nodes:nnodes
        [
          ("acked_kops", r.cr_kops);
          ("acked_ops", float_of_int r.cr_acked);
          ("failed", float_of_int r.cr_failed);
          ("unavailable", float_of_int r.cr_unavailable);
          ("moved", float_of_int r.cr_moved);
          ("shed", float_of_int r.cr_shed);
        ];
      cluster_emit ~phase:"migrate" ~scheme:scheme_name
        ~structure:structure_name ~nodes:nnodes
        [
          ("migrations", float_of_int r.cr_migrations);
          ("snap_kvs", float_of_int r.cr_snap_kvs);
          ("snap_pages", float_of_int r.cr_snap_pages);
          ("catchup_records", float_of_int r.cr_catchup_records);
          ("catchup_rounds", float_of_int r.cr_catchup_rounds);
          ("delta_ships", float_of_int r.cr_delta_ships);
        ];
      cluster_emit ~phase:"snapshot" ~scheme:scheme_name
        ~structure:structure_name ~nodes:nnodes
        [
          ("snap_unreclaimed", float_of_int r.cr_snap_unr);
          ("bound", float_of_int bound);
        ];
      cluster_emit ~phase:"faults" ~scheme:scheme_name
        ~structure:structure_name ~nodes:nnodes
        [
          ("reboots", float_of_int r.cr_reboots);
          ("partitions", float_of_int r.cr_partitions);
          ("table_kept", if r.cr_table_kept then 1.0 else 0.0);
          ("oracle_ok", if r.cr_oracle_ok then 1.0 else 0.0);
        ])
    schemes;
  Format.printf "@.";
  (* The robustness contrast: the parked snapshot shipper is the
     paper's stalled adversary at cluster scale.  EBR must blow the
     bound; every robust scheme must stay under it. *)
  let is_robust n =
    let prefix p =
      String.length n >= String.length p && String.sub n 0 (String.length p) = p
    in
    prefix "hyalines" || prefix "crystalline"
  in
  (match List.assoc_opt "ebr" !snap_unr with
  | Some u ->
      check (u > bound)
        (Printf.sprintf
           "ebr: parked snapshot shipper pinned only %d nodes (bound %d) — \
            expected unbounded growth"
           u bound)
  | None -> if smoke then check false "smoke needs ebr in --schemes");
  (match List.filter (fun (n, _) -> is_robust n) !snap_unr with
  | [] ->
      if smoke then
        check false
          "smoke needs a robust scheme (hyalines/crystalline) in --schemes"
  | robusts ->
      List.iter
        (fun (n, u) ->
          check (u <= bound)
            (Printf.sprintf
               "%s: snapshot-shipping backlog %d exceeded the bound %d" n u
               bound))
        robusts);
  if !problems <> [] then begin
    List.iter
      (fun m ->
        Format.eprintf "cluster%s FAILED: %s@."
          (if smoke then " smoke" else "")
          m)
      (List.rev !problems);
    exit 1
  end
  else if smoke then
    Format.printf
      "cluster smoke ok: zero lost acks through live migration and node \
       faults, merged acked history oracle-identical, cutover record kept \
       across reboot, back-migration shipped a delta chain, \
       snapshot-shipping backlog bounded only under the robust schemes@."

let rec dispatch figure ds paper threads duration active plot csv metrics_csv
    prom repeat dist schemes_arg head_backend shards_arg stalled_shards rate
    mixname churn mailbox_cap chaos_steps chaos_seed faults_arg bound smoke
    transport zc nodes_arg snap_every delta =
  (* --head-backend: rebase every Hyaline entry of a sweep list onto
     the requested Head backend (dwcas|llsc|packed); baselines and
     schemes without that variant pass through unchanged. *)
  let rebase names =
    if head_backend = "default" then names
    else List.map (Registry.scheme_with_backend ~backend:head_backend) names
  in
  (match csv with
  | Some path when !csv_channel = None ->
      let oc = open_out path in
      output_string oc
        (match String.lowercase_ascii figure with
        | "serve" when transport <> "inproc" -> transport_csv_header
        | "serve" -> serve_csv_header
        | "chaos" -> chaos_csv_header
        | "replicate" -> rep_csv_header
        | "cluster" -> cluster_csv_header
        | _ -> csv_header);
      csv_channel := Some oc
  | _ -> ());
  (match metrics_csv with
  | Some path when !metrics_channel = None ->
      let oc = open_out path in
      output_string oc metrics_header;
      metrics_channel := Some oc
  | _ -> ());
  (match prom with
  | Some path when !prom_channel = None -> prom_channel := Some (open_out path)
  | _ -> ());
  let sc = scale_of ~paper ~threads ~duration ~repeat ~dist in
  let ds_list = match ds with "all" -> all_ds | d -> [ d ] in
  let tplot = if plot then `Threads else `No in
  match String.lowercase_ascii figure with
  | "serve" ->
      let schemes =
        rebase
          (match schemes_arg with
          | [] ->
              if transport = "inproc" then
                [ "ebr"; "hyaline"; "hyaline1s"; "crystalline" ]
              else [ "hyaline" ]
          | l -> l)
      in
      if smoke then
        if zc = "remote" then run_serve_zc_smoke () else run_serve_smoke ()
      else if transport = "inproc" then
        run_serve ~sc ~ds ~schemes ~shards:shards_arg ~stalled:stalled_shards
          ~rate ~mixname ~churn ~mailbox_cap ~plot
      else
        run_serve_transport ~sc ~ds ~schemes ~shards:shards_arg ~transport
          ~mixname ~mailbox_cap
  | "chaos" ->
      let schemes =
        rebase
          (match schemes_arg with
          | [] -> [ "ebr"; "hyalines"; "hyaline1s"; "crystalline" ]
          | l -> l)
      in
      run_chaos ~ds ~schemes ~classes:faults_arg ~steps:chaos_steps
        ~seed:chaos_seed ~bound ~shards:shards_arg ~smoke ~plot
  | "replicate" ->
      let schemes =
        rebase
          (match schemes_arg with
          | [] -> [ "ebr"; "hyalines"; "crystalline" ]
          | l -> l)
      in
      run_replicate ~sc ~ds ~schemes ~shards:shards_arg ~smoke ~plot
        ~snap_every ~delta
  | "cluster" ->
      let schemes =
        rebase
          (match schemes_arg with
          | [] -> [ "ebr"; "hyalines"; "crystalline" ]
          | l -> l)
      in
      run_cluster ~ds ~schemes ~nnodes:nodes_arg ~seed:chaos_seed ~smoke
  | "table1" ->
      Format.printf "## Table 1 — scheme properties@.";
      Figures.table1 Format.std_formatter;
      Format.printf
        "@.(retire-cost microbenchmarks: `dune exec bench/main.exe`)@."
  | "fig8" | "fig9" ->
      run_sweep ~plot ~sc ~ds:ds_list ~schemes:(rebase Figures.figure8_schemes)
        ~mix:Driver.write_heavy
        ~fig_label:"Fig. 8/9 (x86 write-heavy 50i/50d)"
  | "fig11" | "fig12" ->
      run_sweep ~plot ~sc ~ds:ds_list ~schemes:(rebase Figures.figure8_schemes)
        ~mix:Driver.read_mostly
        ~fig_label:"Fig. 11/12 (x86 read-mostly 90g/10p)"
  | "fig13" | "fig14" ->
      run_sweep ~plot ~sc ~ds:ds_list ~schemes:(rebase Figures.ppc_schemes)
        ~mix:Driver.write_heavy
        ~fig_label:"Fig. 13/14 (LL/SC backend, write-heavy)"
  | "fig15" | "fig16" ->
      run_sweep ~plot ~sc ~ds:ds_list ~schemes:(rebase Figures.ppc_schemes)
        ~mix:Driver.read_mostly
        ~fig_label:"Fig. 15/16 (LL/SC backend, read-mostly)"
  | "fig10a" ->
      emit_rows
        ~plot:(if plot then `Stalled else `No)
        (Printf.sprintf "Fig. 10a (robustness: %d active + stalled, hashmap)"
           active)
        (fun emit -> Figures.robustness ~sc ~active ~emit)
  | "fig10b" ->
      emit_rows ~plot:tplot "Fig. 10b (trimming, hashmap, 32 slots)"
        (fun emit -> Figures.trimming ~sc ~emit)
  | "ablate-batch" ->
      emit_rows ~plot:tplot "Ablation: Hyaline batch size (hashmap)"
        (fun emit -> Figures.ablate_batch ~sc ~emit)
  | "ablate-slots" ->
      emit_rows ~plot:tplot "Ablation: Hyaline slot count (hashmap)"
        (fun emit -> Figures.ablate_slots ~sc ~emit)
  | "ablate-freq" ->
      emit_rows "Ablation: Hyaline-S era frequency, 1 stalled (hashmap)"
        (fun emit -> Figures.ablate_freq ~sc ~emit)
  | "ablate-spurious" ->
      emit_rows ~plot:tplot
        "Ablation: LL/SC spurious failure rate (hashmap)" (fun emit ->
          Figures.ablate_spurious ~sc ~emit)
  | "ablate-skew" ->
      emit_rows "Ablation: key skew, uniform vs Zipf (hashmap)" (fun emit ->
          Figures.ablate_skew ~sc ~emit)
  | "lag" ->
      List.iter
        (fun structure_name ->
          emit_lag_rows ~plot
            (Printf.sprintf "Reclamation lag (retire→free) — %s"
               structure_name)
            (fun emit ->
              Figures.reclamation_lag ~sc ~structure_name
                ~stalled_counts:[ 0; 1 ] ~emit ()))
        ds_list
  | "ablate" | "ablations" ->
      List.iter
        (fun f ->
          dispatch f "hashmap" paper threads duration active plot csv
            metrics_csv prom repeat dist schemes_arg head_backend shards_arg
            stalled_shards rate mixname churn mailbox_cap chaos_steps
            chaos_seed faults_arg bound smoke transport zc nodes_arg
            snap_every delta)
        [
          "ablate-batch"; "ablate-slots"; "ablate-freq"; "ablate-spurious";
          "ablate-skew";
        ]
  | "all" -> dispatch_all sc ds_list active plot
  | other ->
      Format.eprintf
        "unknown figure %S (try table1, fig8..fig16, fig10a, fig10b, lag, \
         ablate-batch, ablate-slots, ablate-freq, ablate-spurious, serve, \
         chaos, replicate, cluster, all)@."
        other;
      exit 2

and dispatch_all sc ds_list active plot =
  let tplot = if plot then `Threads else `No in
  Format.printf "## Table 1 — scheme properties@.";
  Figures.table1 Format.std_formatter;
  Format.printf "@.";
  run_sweep ~plot ~sc ~ds:ds_list ~schemes:Figures.figure8_schemes
    ~mix:Driver.write_heavy ~fig_label:"Fig. 8/9 (x86 write-heavy 50i/50d)";
  emit_rows
    ~plot:(if plot then `Stalled else `No)
    (Printf.sprintf "Fig. 10a (robustness: %d active + stalled, hashmap)"
       active)
    (fun emit -> Figures.robustness ~sc ~active ~emit);
  emit_rows ~plot:tplot "Fig. 10b (trimming, hashmap, 32 slots)" (fun emit ->
      Figures.trimming ~sc ~emit);
  run_sweep ~plot ~sc ~ds:ds_list ~schemes:Figures.figure8_schemes
    ~mix:Driver.read_mostly ~fig_label:"Fig. 11/12 (x86 read-mostly 90g/10p)";
  run_sweep ~plot ~sc ~ds:ds_list ~schemes:Figures.ppc_schemes ~mix:Driver.write_heavy
    ~fig_label:"Fig. 13/14 (LL/SC backend, write-heavy)";
  run_sweep ~plot ~sc ~ds:ds_list ~schemes:Figures.ppc_schemes ~mix:Driver.read_mostly
    ~fig_label:"Fig. 15/16 (LL/SC backend, read-mostly)";
  emit_rows ~plot:tplot "Ablation: Hyaline batch size (hashmap)" (fun emit ->
      Figures.ablate_batch ~sc ~emit);
  emit_rows ~plot:tplot "Ablation: Hyaline slot count (hashmap)" (fun emit ->
      Figures.ablate_slots ~sc ~emit);
  emit_rows "Ablation: Hyaline-S era frequency, 1 stalled (hashmap)"
    (fun emit -> Figures.ablate_freq ~sc ~emit);
  emit_rows ~plot:tplot "Ablation: LL/SC spurious failure rate (hashmap)"
    (fun emit -> Figures.ablate_spurious ~sc ~emit)

open Cmdliner

let figure =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FIGURE"
        ~doc:
          "Which result to regenerate: table1, fig8, fig9, fig10a, fig10b, \
           fig11..fig16, ablate-batch, ablate-slots, ablate-freq, \
           ablate-spurious, ablate (all four), serve (the KV service \
           sweep), chaos (the fault-injection matrix), replicate (the \
           durable-primary matrix), cluster (the multi-daemon migration \
           matrix), or all.")

let ds =
  Arg.(
    value & opt string "all"
    & info [ "ds" ] ~docv:"STRUCTURE"
        ~doc:"Data structure: list, hashmap, bonsai, nmtree, or all.")

let paper =
  Arg.(
    value & flag
    & info [ "paper" ]
        ~doc:
          "Use the paper's full-scale parameters (50k prefill, 10s runs, \
           wide thread sweep).  Very slow on small machines.")

let threads =
  Arg.(
    value
    & opt (list int) []
    & info [ "threads" ] ~docv:"N,N,..."
        ~doc:"Override the thread-count sweep, e.g. --threads 1,2,4,8.")

let duration =
  Arg.(
    value
    & opt (some float) None
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Per-data-point run time.")

let active =
  Arg.(
    value & opt int 2
    & info [ "active" ] ~docv:"N"
        ~doc:"Active worker threads in the fig10a robustness experiment.")

let plot =
  Arg.(
    value & flag
    & info [ "plot" ]
        ~doc:"Also render each figure as ASCII charts (one marker per \
              scheme), like the paper's plots.")

let csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE"
        ~doc:"Also append every data point to $(docv) as CSV.")

let metrics_csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-csv" ] ~docv:"FILE"
        ~doc:
          "For instrumented figures (lag): append one CSV row per data \
           point with lag percentiles, event totals and final gauges to \
           $(docv).")

let prom =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "For instrumented figures (lag): append each run's \
           Prometheus-format metrics dump to $(docv).")

let repeat =
  Arg.(
    value
    & opt (some int) None
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Runs averaged per data point (the paper uses 5; the quick            scale defaults to 1).")

let dist =
  Arg.(
    value
    & opt (some string) None
    & info [ "dist" ] ~docv:"DIST"
        ~doc:
          "Key distribution for every run of the sweep: uniform, zipf \
           (theta 0.99), or zipf:THETA.")

let schemes_arg =
  Arg.(
    value
    & opt (list string) []
    & info [ "schemes" ] ~docv:"S,S,..."
        ~doc:
          "(serve) Schemes to sweep, e.g. ebr,hyaline,hyaline1s.  Default: \
           ebr, hyaline, hyaline1s.")

let head_backend_arg =
  Arg.(
    value
    & opt string "default"
    & info [ "head-backend" ] ~docv:"B"
        ~doc:
          "Rebase the Hyaline schemes of the selected figure/serve/chaos \
           sweep onto this Head backend: dwcas (the default pairs), llsc, \
           or packed.  Baselines and schemes without the variant are left \
           unchanged.")

let shards_arg =
  Arg.(
    value & opt int 4
    & info [ "shards" ] ~docv:"N" ~doc:"(serve) Partitions / consumer domains.")

let stalled_shards =
  Arg.(
    value & opt int 0
    & info [ "stalled-shards" ] ~docv:"N"
        ~doc:
          "(serve) Park this many shard consumers inside a control-plane \
           bracket for the whole run (the robustness scenario: their \
           mailboxes fill and shed while their reservation pins garbage).")

let rate =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate" ] ~docv:"REQ_PER_S"
        ~doc:
          "(serve) Open-loop arrival rate, pool-wide.  Without it the load \
           is closed-loop (each client waits for its reply).")

let mixname =
  Arg.(
    value & opt string "read"
    & info [ "mix" ] ~docv:"MIX"
        ~doc:"(serve) Operation mix: read (90/5/3/2) or write (40/30/20/10).")

let churn =
  Arg.(
    value
    & opt (some int) None
    & info [ "churn" ] ~docv:"OPS"
        ~doc:
          "(serve) Worker churn: each client slot re-spawns its domain every \
           $(docv) requests (transparency on the serving path).")

let mailbox_cap =
  Arg.(
    value & opt int 256
    & info [ "mailbox-cap" ] ~docv:"N"
        ~doc:"(serve) Per-shard mailbox bound; a full mailbox sheds.")

let chaos_steps =
  Arg.(
    value & opt int 600
    & info [ "chaos-steps" ] ~docv:"N"
        ~doc:"(chaos) Virtual steps per run (one request per step).")

let chaos_seed =
  Arg.(
    value & opt int 42
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "(chaos) Plan + workload seed.  The same seed replays the same \
           faults at the same virtual timestamps with byte-identical trace \
           and matrix output.")

let faults_arg =
  Arg.(
    value
    & opt (list string) [ "mixed" ]
    & info [ "faults" ] ~docv:"CLASS,..."
        ~doc:
          "(chaos) Fault classes to run, each a matrix section: stall, \
           crash, oom, net, churn, or mixed.")

let bound =
  Arg.(
    value & opt int 96
    & info [ "bound" ] ~docv:"BLOCKS"
        ~doc:
          "(chaos) Robustness bound: max tolerated control-plane \
           retired-unreclaimed backlog measured when a crash is detected.")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "(chaos) CI gate: run the fixed crash+oom+net plan twice against \
           hyaline-s and ebr; exit 1 unless replays are identical, \
           hyaline-s stays within --bound with a passing oracle, and ebr \
           exceeds it.  (serve) CI gate: a seeded request stream must \
           answer identically over the unix and shm transports, and a \
           stalled zero-copy bracket must stay bounded under the robust \
           scheme while epoch balloons.  (cluster) CI gate: zero lost acks \
           through a live migration plus node kill/partition, merged acked \
           history oracle-identical, and the snapshot-shipping backlog \
           bounded only under the robust schemes.")

let transport_arg =
  Arg.(
    value
    & opt string "inproc"
    & info [ "transport" ] ~docv:"KIND"
        ~doc:
          "(serve) Where the requests travel: $(b,inproc) (the mailbox \
           sweep, no wire), $(b,unix) (socket RTT), $(b,shm) (mmap'd ring \
           RTT, no syscall per op), or $(b,all) (unix and shm side by \
           side).")

let zc_arg =
  Arg.(
    value
    & opt string "off"
    & info [ "zc" ] ~docv:"MODE"
        ~doc:
          "(serve --smoke) $(b,remote) switches the smoke to the \
           cross-process zero-copy gates: an arena-backed shm daemon must \
           answer a seeded stream byte-identically by reference and by \
           copy, a stalled remote reservation must stay bounded under \
           handoff while epoch balloons, and a client that dies holding \
           its bracket must have its slot swept.  $(b,off) (default) runs \
           the plain transport smoke.")

let nodes_arg =
  Arg.(
    value & opt int 2
    & info [ "nodes" ] ~docv:"N"
        ~doc:"(cluster) Daemon count in the consistent-hash ring.")

let snap_every_arg =
  Arg.(
    value & opt int 0
    & info [ "snap-every" ] ~docv:"N"
        ~doc:
          "(replicate) Snapshot every N acked rounds during the failover \
           phase's pre-follower history (0 = only the single mid-history \
           snapshot).  With $(b,--delta) the cadence publishes base+delta \
           chains for recovery to bootstrap through.")

let delta_arg =
  Arg.(
    value & flag
    & info [ "delta" ]
        ~doc:
          "(replicate) Run primaries with dirty-set tracking and incremental \
           snapshots, measure the delta-vs-full traversal amplification, and \
           park a stalled reader inside a delta traversal for the robustness \
           contrast.")

let cmd =
  let doc =
    "Regenerate the tables and figures of 'Hyaline: Fast and Transparent \
     Lock-Free Memory Reclamation' (PLDI 2021)."
  in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const dispatch $ figure $ ds $ paper $ threads $ duration $ active
      $ plot $ csv $ metrics_csv $ prom $ repeat $ dist $ schemes_arg
      $ head_backend_arg $ shards_arg $ stalled_shards $ rate $ mixname
      $ churn $ mailbox_cap $ chaos_steps $ chaos_seed $ faults_arg $ bound
      $ smoke $ transport_arg $ zc_arg $ nodes_arg $ snap_every_arg
      $ delta_arg)

let () = exit (Cmd.eval cmd)
