(* CLI regenerating every table and figure of the paper's evaluation.

   Usage:
     experiments table1
     experiments fig8  [--ds hashmap] [--paper] [--threads 1,2,4] [--plot]
     experiments fig10a [--active 2]
     experiments lag [--ds hashmap] [--metrics-csv m.csv] [--prom m.prom]
     experiments ablate-batch | ablate-slots | ablate-freq | ablate-spurious
     experiments all

   Each throughput figure shares its runs with its companion
   unreclaimed-objects figure (8/9, 11/12, 13/14, 15/16), so either
   name prints both metrics; --plot additionally renders the two
   ASCII charts (throughput, and unreclaimed on a log axis). *)

open Workload

let all_ds = [ "list"; "hashmap"; "bonsai"; "nmtree" ]

let scale_of ~paper ~threads ~duration ~repeat =
  let base = if paper then Figures.paper else Figures.quick in
  let base =
    match threads with
    | [] -> base
    | ts -> { base with Figures.threads = ts }
  in
  let base =
    match duration with
    | None -> base
    | Some d -> { base with Figures.duration = d }
  in
  match repeat with
  | None -> base
  | Some r -> { base with Figures.repeats = r }

(* Group collected rows into Plot series keyed by scheme name,
   preserving first-appearance order. *)
let series_of rows ~x ~y =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = r.Driver.scheme in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key [];
        order := key :: !order
      end;
      Hashtbl.replace tbl key ((x r, y r) :: Hashtbl.find tbl key))
    rows;
  List.rev_map
    (fun label ->
      { Plot.label; points = List.rev (Hashtbl.find tbl label) })
    !order

let render_charts ~title ~xlabel rows =
  let throughput =
    Plot.render ~title:(title ^ " — throughput") ~ylabel:"Mops/s" ~xlabel
      (series_of rows
         ~x:(fun r -> float_of_int r.Driver.threads)
         ~y:(fun r -> r.Driver.throughput))
  in
  let unreclaimed =
    Plot.render ~logy:true
      ~title:(title ^ " — avg unreclaimed objects")
      ~ylabel:"blocks" ~xlabel
      (series_of rows
         ~x:(fun r -> float_of_int r.Driver.threads)
         ~y:(fun r -> r.Driver.avg_unreclaimed))
  in
  print_string throughput;
  print_newline ();
  print_string unreclaimed

let render_charts_stalled ~title rows =
  let mk ~logy ~ylabel y =
    Plot.render ~logy ~title:(title ^ " — " ^ ylabel) ~ylabel
      ~xlabel:"stalled threads"
      (series_of rows
         ~x:(fun r -> float_of_int r.Driver.stalled)
         ~y)
  in
  print_string (mk ~logy:true ~ylabel:"avg unreclaimed" (fun r -> r.Driver.avg_unreclaimed));
  print_newline ();
  print_string (mk ~logy:false ~ylabel:"Mops/s" (fun r -> r.Driver.throughput))

(* Optional machine-readable sink, set from --csv. *)
let csv_channel : out_channel option ref = ref None

let csv_header = "figure,scheme,structure,threads,stalled,ops,duration_s,mops,avg_unreclaimed,max_unreclaimed,retires,frees\n"

let csv_row oc title (r : Driver.result) =
  Printf.fprintf oc "%s,%s,%s,%d,%d,%d,%.4f,%.6f,%.1f,%d,%d,%d\n"
    (String.map (function ',' -> ';' | c -> c) title)
    r.Driver.scheme r.Driver.structure r.Driver.threads r.Driver.stalled
    r.Driver.ops r.Driver.duration r.Driver.throughput
    r.Driver.avg_unreclaimed r.Driver.max_unreclaimed r.Driver.retires
    r.Driver.frees

(* Observability sinks for the instrumented `lag` figure: --metrics-csv
   (one row per data point: lag percentiles, event totals, final
   gauges) and --prom (concatenated Prometheus text dumps). *)
let metrics_channel : out_channel option ref = ref None
let prom_channel : out_channel option ref = ref None

let metrics_header =
  "figure,scheme,structure,threads,stalled,lag_count,lag_p50_ns,lag_p90_ns,lag_p99_ns,lag_max_ns,events_alloc,events_retire,events_free,events_enter,events_leave,events_trim,gauges\n"

let metrics_row oc title ({ Figures.l_result = r; l_recorder } : Figures.lag_row)
    =
  let h = Obs.Recorder.lag_hist l_recorder in
  let ev k = Obs.Recorder.events_total l_recorder k in
  let gauges =
    Obs.Recorder.gauges l_recorder
    |> List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
    |> String.concat ";"
  in
  Printf.fprintf oc "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n"
    (String.map (function ',' -> ';' | c -> c) title)
    r.Driver.scheme r.Driver.structure r.Driver.threads r.Driver.stalled
    (Obs.Hist.count h)
    (Obs.Hist.percentile h 0.50)
    (Obs.Hist.percentile h 0.90)
    (Obs.Hist.percentile h 0.99)
    (Obs.Hist.max_value h) (ev Obs.Ring.Alloc) (ev Obs.Ring.Retire)
    (ev Obs.Ring.Free) (ev Obs.Ring.Enter) (ev Obs.Ring.Leave)
    (ev Obs.Ring.Trim) gauges

let emit_lag_rows ~plot title f =
  Format.printf "## %s@." title;
  Format.printf "%-18s %-8s %4s %4s %9s %9s %9s %9s %9s@." "scheme"
    "structure" "thr" "stl" "frees" "lag-p50" "lag-p90" "lag-p99" "lag-max";
  f (fun ({ Figures.l_result = r; l_recorder } as row) ->
      let h = Obs.Recorder.lag_hist l_recorder in
      Format.printf "%-18s %-8s %4d %4d %9d %9s %9s %9s %9s@."
        r.Driver.scheme r.Driver.structure r.Driver.threads r.Driver.stalled
        (Obs.Hist.count h)
        (Plot.fmt_ns (Obs.Hist.percentile h 0.50))
        (Plot.fmt_ns (Obs.Hist.percentile h 0.90))
        (Plot.fmt_ns (Obs.Hist.percentile h 0.99))
        (Plot.fmt_ns (Obs.Hist.max_value h));
      if plot then
        print_string
          (Plot.histogram
             ~title:
               (Printf.sprintf "%s / %s, %d stalled — retire→free lag"
                  r.Driver.scheme r.Driver.structure r.Driver.stalled)
             (Obs.Hist.buckets h));
      (match !metrics_channel with
      | Some oc ->
          metrics_row oc title row;
          flush oc
      | None -> ());
      match !prom_channel with
      | Some oc ->
          Printf.fprintf oc "# run: %s scheme=%s structure=%s stalled=%d\n%s\n"
            title r.Driver.scheme r.Driver.structure r.Driver.stalled
            (Obs.Recorder.prometheus l_recorder);
          flush oc
      | None -> ());
  Format.printf "@."

let emit_rows ?(plot = `No) title f =
  Format.printf "## %s@." title;
  Driver.pp_result_header Format.std_formatter ();
  let rows = ref [] in
  f (fun r ->
      rows := r :: !rows;
      (match !csv_channel with
      | Some oc ->
          csv_row oc title r;
          flush oc
      | None -> ());
      Driver.pp_result Format.std_formatter r;
      Format.pp_print_flush Format.std_formatter ());
  Format.printf "@.";
  match plot with
  | `No -> ()
  | `Threads -> render_charts ~title ~xlabel:"threads" (List.rev !rows)
  | `Stalled -> render_charts_stalled ~title (List.rev !rows)

let run_sweep ~plot ~sc ~ds ~schemes ~mix ~fig_label =
  List.iter
    (fun structure_name ->
      emit_rows
        ~plot:(if plot then `Threads else `No)
        (Printf.sprintf "%s — %s" fig_label structure_name)
        (fun emit -> Figures.sweep ~sc ~structure_name ~schemes ~mix ~emit))
    ds

let rec dispatch figure ds paper threads duration active plot csv metrics_csv
    prom repeat =
  (match csv with
  | Some path when !csv_channel = None ->
      let oc = open_out path in
      output_string oc csv_header;
      csv_channel := Some oc
  | _ -> ());
  (match metrics_csv with
  | Some path when !metrics_channel = None ->
      let oc = open_out path in
      output_string oc metrics_header;
      metrics_channel := Some oc
  | _ -> ());
  (match prom with
  | Some path when !prom_channel = None -> prom_channel := Some (open_out path)
  | _ -> ());
  let sc = scale_of ~paper ~threads ~duration ~repeat in
  let ds = match ds with "all" -> all_ds | d -> [ d ] in
  let tplot = if plot then `Threads else `No in
  match String.lowercase_ascii figure with
  | "table1" ->
      Format.printf "## Table 1 — scheme properties@.";
      Figures.table1 Format.std_formatter;
      Format.printf
        "@.(retire-cost microbenchmarks: `dune exec bench/main.exe`)@."
  | "fig8" | "fig9" ->
      run_sweep ~plot ~sc ~ds ~schemes:Figures.figure8_schemes
        ~mix:Driver.write_heavy
        ~fig_label:"Fig. 8/9 (x86 write-heavy 50i/50d)"
  | "fig11" | "fig12" ->
      run_sweep ~plot ~sc ~ds ~schemes:Figures.figure8_schemes
        ~mix:Driver.read_mostly
        ~fig_label:"Fig. 11/12 (x86 read-mostly 90g/10p)"
  | "fig13" | "fig14" ->
      run_sweep ~plot ~sc ~ds ~schemes:Figures.ppc_schemes
        ~mix:Driver.write_heavy
        ~fig_label:"Fig. 13/14 (LL/SC backend, write-heavy)"
  | "fig15" | "fig16" ->
      run_sweep ~plot ~sc ~ds ~schemes:Figures.ppc_schemes
        ~mix:Driver.read_mostly
        ~fig_label:"Fig. 15/16 (LL/SC backend, read-mostly)"
  | "fig10a" ->
      emit_rows
        ~plot:(if plot then `Stalled else `No)
        (Printf.sprintf "Fig. 10a (robustness: %d active + stalled, hashmap)"
           active)
        (fun emit -> Figures.robustness ~sc ~active ~emit)
  | "fig10b" ->
      emit_rows ~plot:tplot "Fig. 10b (trimming, hashmap, 32 slots)"
        (fun emit -> Figures.trimming ~sc ~emit)
  | "ablate-batch" ->
      emit_rows ~plot:tplot "Ablation: Hyaline batch size (hashmap)"
        (fun emit -> Figures.ablate_batch ~sc ~emit)
  | "ablate-slots" ->
      emit_rows ~plot:tplot "Ablation: Hyaline slot count (hashmap)"
        (fun emit -> Figures.ablate_slots ~sc ~emit)
  | "ablate-freq" ->
      emit_rows "Ablation: Hyaline-S era frequency, 1 stalled (hashmap)"
        (fun emit -> Figures.ablate_freq ~sc ~emit)
  | "ablate-spurious" ->
      emit_rows ~plot:tplot
        "Ablation: LL/SC spurious failure rate (hashmap)" (fun emit ->
          Figures.ablate_spurious ~sc ~emit)
  | "ablate-skew" ->
      emit_rows "Ablation: key skew, uniform vs Zipf (hashmap)" (fun emit ->
          Figures.ablate_skew ~sc ~emit)
  | "lag" ->
      List.iter
        (fun structure_name ->
          emit_lag_rows ~plot
            (Printf.sprintf "Reclamation lag (retire→free) — %s"
               structure_name)
            (fun emit ->
              Figures.reclamation_lag ~sc ~structure_name
                ~stalled_counts:[ 0; 1 ] ~emit ()))
        ds
  | "ablate" | "ablations" ->
      List.iter
        (fun f ->
          dispatch f "hashmap" paper threads duration active plot csv
            metrics_csv prom repeat)
        [
          "ablate-batch"; "ablate-slots"; "ablate-freq"; "ablate-spurious";
          "ablate-skew";
        ]
  | "all" -> dispatch_all sc ds active plot
  | other ->
      Format.eprintf
        "unknown figure %S (try table1, fig8..fig16, fig10a, fig10b, lag, \
         ablate-batch, ablate-slots, ablate-freq, ablate-spurious, all)@."
        other;
      exit 2

and dispatch_all sc ds active plot =
  let tplot = if plot then `Threads else `No in
  Format.printf "## Table 1 — scheme properties@.";
  Figures.table1 Format.std_formatter;
  Format.printf "@.";
  run_sweep ~plot ~sc ~ds ~schemes:Figures.figure8_schemes
    ~mix:Driver.write_heavy ~fig_label:"Fig. 8/9 (x86 write-heavy 50i/50d)";
  emit_rows
    ~plot:(if plot then `Stalled else `No)
    (Printf.sprintf "Fig. 10a (robustness: %d active + stalled, hashmap)"
       active)
    (fun emit -> Figures.robustness ~sc ~active ~emit);
  emit_rows ~plot:tplot "Fig. 10b (trimming, hashmap, 32 slots)" (fun emit ->
      Figures.trimming ~sc ~emit);
  run_sweep ~plot ~sc ~ds ~schemes:Figures.figure8_schemes
    ~mix:Driver.read_mostly ~fig_label:"Fig. 11/12 (x86 read-mostly 90g/10p)";
  run_sweep ~plot ~sc ~ds ~schemes:Figures.ppc_schemes ~mix:Driver.write_heavy
    ~fig_label:"Fig. 13/14 (LL/SC backend, write-heavy)";
  run_sweep ~plot ~sc ~ds ~schemes:Figures.ppc_schemes ~mix:Driver.read_mostly
    ~fig_label:"Fig. 15/16 (LL/SC backend, read-mostly)";
  emit_rows ~plot:tplot "Ablation: Hyaline batch size (hashmap)" (fun emit ->
      Figures.ablate_batch ~sc ~emit);
  emit_rows ~plot:tplot "Ablation: Hyaline slot count (hashmap)" (fun emit ->
      Figures.ablate_slots ~sc ~emit);
  emit_rows "Ablation: Hyaline-S era frequency, 1 stalled (hashmap)"
    (fun emit -> Figures.ablate_freq ~sc ~emit);
  emit_rows ~plot:tplot "Ablation: LL/SC spurious failure rate (hashmap)"
    (fun emit -> Figures.ablate_spurious ~sc ~emit)

open Cmdliner

let figure =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FIGURE"
        ~doc:
          "Which result to regenerate: table1, fig8, fig9, fig10a, fig10b, \
           fig11..fig16, ablate-batch, ablate-slots, ablate-freq, \
           ablate-spurious, ablate (all four), or all.")

let ds =
  Arg.(
    value & opt string "all"
    & info [ "ds" ] ~docv:"STRUCTURE"
        ~doc:"Data structure: list, hashmap, bonsai, nmtree, or all.")

let paper =
  Arg.(
    value & flag
    & info [ "paper" ]
        ~doc:
          "Use the paper's full-scale parameters (50k prefill, 10s runs, \
           wide thread sweep).  Very slow on small machines.")

let threads =
  Arg.(
    value
    & opt (list int) []
    & info [ "threads" ] ~docv:"N,N,..."
        ~doc:"Override the thread-count sweep, e.g. --threads 1,2,4,8.")

let duration =
  Arg.(
    value
    & opt (some float) None
    & info [ "duration" ] ~docv:"SECONDS" ~doc:"Per-data-point run time.")

let active =
  Arg.(
    value & opt int 2
    & info [ "active" ] ~docv:"N"
        ~doc:"Active worker threads in the fig10a robustness experiment.")

let plot =
  Arg.(
    value & flag
    & info [ "plot" ]
        ~doc:"Also render each figure as ASCII charts (one marker per \
              scheme), like the paper's plots.")

let csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE"
        ~doc:"Also append every data point to $(docv) as CSV.")

let metrics_csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-csv" ] ~docv:"FILE"
        ~doc:
          "For instrumented figures (lag): append one CSV row per data \
           point with lag percentiles, event totals and final gauges to \
           $(docv).")

let prom =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "For instrumented figures (lag): append each run's \
           Prometheus-format metrics dump to $(docv).")

let repeat =
  Arg.(
    value
    & opt (some int) None
    & info [ "repeat" ] ~docv:"N"
        ~doc:
          "Runs averaged per data point (the paper uses 5; the quick            scale defaults to 1).")

let cmd =
  let doc =
    "Regenerate the tables and figures of 'Hyaline: Fast and Transparent \
     Lock-Free Memory Reclamation' (PLDI 2021)."
  in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(
      const dispatch $ figure $ ds $ paper $ threads $ duration $ active
      $ plot $ csv $ metrics_csv $ prom $ repeat)

let () = exit (Cmd.eval cmd)
