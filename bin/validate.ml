(* Soak validator: one command that hammers every (structure x scheme)
   pair with the full checking arsenal armed and reports pass/fail.

     dune exec bin/validate.exe -- [--seconds 0.5] [--threads 4]
                                   [--ds hashmap] [--scheme Hyaline]
                                   [--seed 1]

   Per pair it runs, in order:
   1. a mixed concurrent stress with pool recycling and the
      use-after-free lifecycle detector enabled, followed by structural
      invariant checks and the frees = retires quiescence audit;
   2. a batch of short high-contention runs whose recorded histories
      are verified linearizable (Wing-Gong).

   Exit status 0 iff everything passed — usable as a CI gate. *)

open Workload

let stress (module M : Dstruct.Map_intf.S) ~threads ~stalled ~seconds ~seed =
  let total = threads + stalled in
  let cfg =
    {
      (Smr.Config.paper ~nthreads:total) with
      Smr.Config.slots = 8;
      batch_min = 16;
      check_uaf = true;
    }
  in
  let m = M.create ~cfg () in
  let stop = Atomic.make false in
  let key_range = 512 in
  let failure = Atomic.make None in
  let worker tid () =
    try
      let rng = Prims.Rng.create ~seed:(seed + (31 * tid)) in
      while not (Atomic.get stop) do
        let k = Prims.Rng.below rng key_range in
        M.enter m ~tid;
        (match Prims.Rng.below rng 10 with
        | 0 | 1 | 2 -> ignore (M.insert m ~tid k k)
        | 3 | 4 | 5 -> ignore (M.remove m ~tid k)
        | 6 -> ignore (M.put m ~tid k (k * 3))
        | _ -> ignore (M.get m ~tid k));
        M.leave m ~tid
      done
    with e -> Atomic.set failure (Some (Printexc.to_string e))
  in
  (* Stalled readers: enter, hold the reservation for the whole run,
     leave only at shutdown — the robustness adversary of §2.3. *)
  let stalled_worker tid () =
    try
      M.enter m ~tid;
      while not (Atomic.get stop) do
        Unix.sleepf 0.005
      done;
      M.leave m ~tid
    with e -> Atomic.set failure (Some (Printexc.to_string e))
  in
  let domains =
    List.init threads (fun tid -> Domain.spawn (worker tid))
    @ List.init stalled (fun j -> Domain.spawn (stalled_worker (threads + j)))
  in
  Unix.sleepf seconds;
  Atomic.set stop true;
  List.iter Domain.join domains;
  (match Atomic.get failure with
  | Some msg -> failwith ("worker died: " ^ msg)
  | None -> ());
  M.check m;
  for tid = 0 to total - 1 do
    M.flush m ~tid
  done;
  let s = Smr.Stats.snapshot (M.stats m) in
  if s.Smr.Stats.retires <> s.Smr.Stats.frees then
    failwith
      (Printf.sprintf "quiescence audit: retired %d, freed %d"
         s.Smr.Stats.retires s.Smr.Stats.frees);
  s.Smr.Stats.retires

let linearizability (module M : Dstruct.Map_intf.S) ~seed =
  let cfg =
    {
      Smr.Config.default with
      Smr.Config.nthreads = 3;
      slots = 2;
      batch_min = 4;
      check_uaf = true;
    }
  in
  for round = 0 to 7 do
    let evs =
      Lincheck.Run.run_map
        (module M)
        ~cfg ~threads:3 ~ops_per_thread:12 ~key_range:3
        ~seed:(seed + round)
    in
    Lincheck.History.check_exn evs
  done

let validate_pair ~(structure : Registry.structure)
    ~(scheme : Registry.scheme) ~threads ~stalled ~seconds ~seed ~obs =
  (* --obs: run the stress instrumented and report the retire→free lag
     distribution next to the pass/fail verdict. *)
  let recorder =
    if obs then Some (Obs.Recorder.create ~nthreads:(threads + stalled) ())
    else None
  in
  let scheme =
    match recorder with
    | None -> scheme
    | Some r ->
        {
          scheme with
          Registry.s_mod =
            Smr.Instrument.wrap (Obs.Recorder.probe r) scheme.Registry.s_mod;
        }
  in
  let map = Registry.make_map structure scheme in
  let retires = stress map ~threads ~stalled ~seconds ~seed in
  linearizability map ~seed;
  (retires, recorder)

let run ds_filter scheme_filter threads stalled seconds seed obs =
  let failures = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (d : Registry.structure) ->
      List.iter
        (fun (s : Registry.scheme) ->
          let wanted which filter =
            match filter with
            | None -> true
            | Some f -> String.lowercase_ascii f = String.lowercase_ascii which
          in
          if
            Registry.compatible ~structure:d ~scheme:s
            && s.Registry.s_name <> "Leaky" (* cannot pass by design *)
            && wanted d.Registry.d_name ds_filter
            && wanted s.Registry.s_name scheme_filter
          then begin
            incr total;
            Printf.printf "%-10s x %-16s ... %!" d.Registry.d_name
              s.Registry.s_name;
            match
              validate_pair ~structure:d ~scheme:s ~threads ~stalled ~seconds
                ~seed ~obs
            with
            | retires, Some r ->
                Printf.printf "ok (%d blocks recycled; lag %s)\n%!" retires
                  (Format.asprintf "%a" Obs.Hist.pp (Obs.Recorder.lag_hist r))
            | retires, None ->
                Printf.printf "ok (%d blocks recycled)\n%!" retires
            | exception e ->
                incr failures;
                Printf.printf "FAIL: %s\n%!" (Printexc.to_string e)
          end)
        Registry.schemes)
    Registry.structures;
  Printf.printf "\n%d/%d pairs passed\n" (!total - !failures) !total;
  if !failures > 0 then exit 1

open Cmdliner

let ds =
  Arg.(
    value
    & opt (some string) None
    & info [ "ds" ] ~docv:"STRUCTURE" ~doc:"Only this structure.")

let scheme =
  Arg.(
    value
    & opt (some string) None
    & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Only this scheme.")

let threads =
  Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Stress worker count.")

let stalled =
  Arg.(
    value & opt int 0
    & info [ "stalled" ]
        ~doc:
          "Additional readers that enter and hold their reservation for \
           the whole stress run (robustness adversary).")

let seconds =
  Arg.(
    value & opt float 0.3
    & info [ "seconds" ] ~doc:"Stress duration per pair.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let obs =
  Arg.(
    value & flag
    & info [ "obs" ]
        ~doc:
          "Instrument each stress run with the observability probe and \
           report the retire→free lag distribution per pair.")

let cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Soak-test every (structure x scheme) pair with use-after-free \
          detection, quiescence audits and linearizability checking.")
    Term.(const run $ ds $ scheme $ threads $ stalled $ seconds $ seed $ obs)

let () = exit (Cmd.eval cmd)
